// Package simk is the simulation application kernel of paper Section 3:
// a parallel particle-in-cell code (a miniature MP3D hypersonic wind
// tunnel) running directly on the Cache Kernel with application-specific
// resource management — eagerly mapped particle memory (no random page
// faults), one worker thread per processor, and time-step synchronization
// built on memory-based signals. It also provides the small simulation
// library pieces the paper mentions: temporal synchronization (Barrier),
// virtual space decomposition (column stripes) and load balancing
// (stripe repartitioning by particle count).
package simk

import (
	"fmt"

	"vpp/internal/aklib"
	"vpp/internal/ck"
	"vpp/internal/hw"
	"vpp/internal/sim"
)

// Barrier synchronizes worker threads with the coordinator through
// Cache Kernel signals: workers signal arrival, the coordinator releases
// them — the temporal synchronization of the simulation library.
type Barrier struct {
	K       *ck.Kernel
	Coord   ck.ObjID   // coordinator thread (receives arrivals)
	Workers []ck.ObjID // worker threads (receive releases)
}

// Arrive is called by worker i when it finishes a phase; it then blocks
// until released.
func (b *Barrier) Arrive(e *hw.Exec, i int) error {
	if err := b.K.PostSignal(e, b.Coord, uint32(i)+1); err != nil {
		return err
	}
	_, err := b.K.WaitSignal(e)
	return err
}

// Gather waits (in the coordinator) for all workers to arrive.
func (b *Barrier) Gather(e *hw.Exec) error {
	for n := 0; n < len(b.Workers); n++ {
		if _, err := b.K.WaitSignal(e); err != nil {
			return err
		}
	}
	return nil
}

// Release lets all workers proceed to the next phase.
func (b *Barrier) Release(e *hw.Exec) error {
	for _, w := range b.Workers {
		if err := b.K.PostSignal(e, w, 1); err != nil {
			return err
		}
	}
	return nil
}

// MP3DConfig sizes the wind-tunnel run.
type MP3DConfig struct {
	CellsX, CellsY   int
	ParticlesPerCell int
	Workers          int
	Steps            int
	// Locality groups particle storage by cell and re-copies particles
	// when they change cells (the paper's fix that recovered the ~25 %
	// degradation); without it particles keep their original slots and
	// cell iteration scatters across pages.
	Locality bool
	Seed     uint64
	// ComputePerParticle is the per-particle ALU charge (cycles),
	// modeling the collision/advection arithmetic.
	ComputePerParticle int
}

// DefaultMP3DConfig returns a laptop-scale configuration that still
// exercises TLB and cache locality.
func DefaultMP3DConfig() MP3DConfig {
	return MP3DConfig{
		CellsX: 32, CellsY: 16, ParticlesPerCell: 16,
		Workers: 4, Steps: 6, Locality: true, Seed: 1,
		ComputePerParticle: 24,
	}
}

// particleBytes is the in-memory record size: x, y, vx, vy, cell, pad to
// a power of two for address arithmetic.
const particleBytes = 32

// MP3DResult reports a run's measurements.
type MP3DResult struct {
	Steps         int
	Particles     int
	CyclesPerStep float64
	MicrosPerStep float64
	// MoveMicrosPerStep is the particle-advance phase alone (summed over
	// workers): the locality-sensitive part the paper's 25 % degradation
	// refers to, excluding barrier and reindex overheads.
	MoveMicrosPerStep float64
	L2HitRate         float64
	TLBMissRate       float64
	Moves             uint64 // cell crossings
	Recopies          uint64 // locality-preserving copies

	moveCycles uint64
}

func (r MP3DResult) String() string {
	return fmt.Sprintf("mp3d: %d particles, %.0f µs/step, L2 hit %.3f, TLB miss %.4f",
		r.Particles, r.MicrosPerStep, r.L2HitRate, r.TLBMissRate)
}

// MP3D is one wind-tunnel instance inside an application kernel.
type MP3D struct {
	AK  *aklib.AppKernel
	Cfg MP3DConfig

	base  uint32 // particle region VA
	slots int    // total particle slots

	// Host-side metadata (the kernel's bookkeeping): which slots belong
	// to which cell, and the free slots of each cell arena.
	cells   [][]int32 // cell -> slot list
	slotVel []struct{ vx, vy int32 }

	rand *sim.Rand

	result MP3DResult
}

// NewMP3D allocates and eagerly maps the particle region (application-
// controlled physical memory: every page mapped up front so the run
// takes no random page faults).
func NewMP3D(e *hw.Exec, ak *aklib.AppKernel, cfg MP3DConfig) (*MP3D, error) {
	if cfg.Workers <= 0 || cfg.CellsX <= 0 || cfg.CellsY <= 0 {
		return nil, fmt.Errorf("simk: bad config")
	}
	m := &MP3D{AK: ak, Cfg: cfg, base: 0x2000_0000, rand: sim.NewRand(cfg.Seed)}
	ncells := cfg.CellsX * cfg.CellsY
	// Arena slack lets locality mode keep particles of a cell adjacent.
	m.slots = ncells * cfg.ParticlesPerCell * 2
	pages := (uint32(m.slots*particleBytes) + hw.PageSize - 1) / hw.PageSize
	if _, err := ak.Mem.Map(e, "particles", m.base, pages,
		aklib.SegFlags{Writable: true, Eager: true}, nil); err != nil {
		return nil, err
	}
	m.cells = make([][]int32, ncells)
	m.slotVel = make([]struct{ vx, vy int32 }, m.slots)
	m.populate(e)
	return m, nil
}

// slotVA returns a particle slot's address.
func (m *MP3D) slotVA(slot int32) uint32 {
	return m.base + uint32(slot)*particleBytes
}

// populate creates the initial particle population. In locality mode
// each cell's particles occupy its arena contiguously; in scattered mode
// slots are assigned by a random permutation across the whole region
// (the "particles scattered across too many pages" the paper measured).
func (m *MP3D) populate(e *hw.Exec) {
	cfg := m.Cfg
	ncells := cfg.CellsX * cfg.CellsY
	perm := m.rand.Perm(m.slots)
	next := 0
	for c := 0; c < ncells; c++ {
		arena := int32(c * cfg.ParticlesPerCell * 2)
		for i := 0; i < cfg.ParticlesPerCell; i++ {
			var slot int32
			if cfg.Locality {
				slot = arena + int32(i)
			} else {
				slot = int32(perm[next])
				next++
			}
			m.cells[c] = append(m.cells[c], slot)
			// Position within cell (fixed point 16.16), rightward bias.
			x := int32(c%cfg.CellsX)<<16 | int32(m.rand.Intn(1<<16))
			y := int32(c/cfg.CellsX)<<16 | int32(m.rand.Intn(1<<16))
			// Rightward drift of a few percent of a cell per step, so
			// cell crossings (and locality-preserving recopies) are
			// infrequent relative to per-particle work.
			vx := int32(1<<12 + m.rand.Intn(1<<12))
			vy := int32(m.rand.Intn(1<<11) - 1<<10)
			va := m.slotVA(slot)
			e.Store32(va+0, uint32(x))
			e.Store32(va+4, uint32(y))
			e.Store32(va+8, uint32(vx))
			e.Store32(va+12, uint32(vy))
			e.Store32(va+16, uint32(c)) // cell
			e.Store32(va+20, 0)         // collision energy accumulator
			m.slotVel[slot] = struct{ vx, vy int32 }{vx, vy}
		}
	}
	m.result.Particles = ncells * cfg.ParticlesPerCell
}

// stripe returns worker w's cell range [lo, hi) by column decomposition.
func (m *MP3D) stripe(w int) (lo, hi int) {
	ncells := m.Cfg.CellsX * m.Cfg.CellsY
	per := (ncells + m.Cfg.Workers - 1) / m.Cfg.Workers
	lo = w * per
	hi = lo + per
	if hi > ncells {
		hi = ncells
	}
	return lo, hi
}

// moveStripe advances every particle in the worker's cells by one time
// step: load its record, integrate, store it back — all through the
// simulated memory system, so locality is physically measurable.
// It returns the list of (cell, idx) that crossed cells.
func (m *MP3D) moveStripe(e *hw.Exec, w int) [][2]int32 {
	cfg := m.Cfg
	lo, hi := m.stripe(w)
	var crossings [][2]int32
	for c := lo; c < hi; c++ {
		for idx, slot := range m.cells[c] {
			va := m.slotVA(slot)
			x := int32(e.Load32(va + 0))
			y := int32(e.Load32(va + 4))
			vx := int32(e.Load32(va + 8))
			vy := int32(e.Load32(va + 12))
			energy := e.Load32(va + 20)
			e.Instr(cfg.ComputePerParticle / hw.CostInstr)
			x += vx
			y += vy
			// Reflect at the tunnel walls (y), wrap at the outlet (x).
			maxY := int32(cfg.CellsY) << 16
			if y < 0 {
				y, vy = -y, -vy
			} else if y >= maxY {
				y, vy = 2*maxY-y-1, -vy
			}
			maxX := int32(cfg.CellsX) << 16
			if x >= maxX {
				x -= maxX // re-enter at the inlet
			}
			e.Store32(va+0, uint32(x))
			e.Store32(va+4, uint32(y))
			e.Store32(va+8, uint32(vx))
			e.Store32(va+12, uint32(vy))
			nc := int(y>>16)*cfg.CellsX + int(x>>16)
			e.Store32(va+16, uint32(nc))
			e.Store32(va+20, energy+uint32((vx*vx+vy*vy)>>16))
			if nc != c {
				crossings = append(crossings, [2]int32{int32(c), int32(idx)})
				_ = nc
			}
		}
	}
	return crossings
}

// reindex moves crossed particles to their new cells (single-threaded
// phase run by the coordinator). In locality mode the particle record is
// copied into the destination cell's arena — the paper's "copying
// particles in some cases as they moved between processors" — keeping
// page locality; in scattered mode only the index changes.
func (m *MP3D) reindex(e *hw.Exec, crossings [][2]int32) {
	cfg := m.Cfg
	// Process in reverse index order per cell so removals are stable.
	for i := len(crossings) - 1; i >= 0; i-- {
		c, idx := crossings[i][0], crossings[i][1]
		list := m.cells[c]
		if int(idx) >= len(list) {
			continue
		}
		slot := list[idx]
		list[idx] = list[len(list)-1]
		m.cells[c] = list[:len(list)-1]
		va := m.slotVA(slot)
		x := int32(e.Load32(va + 0))
		y := int32(e.Load32(va + 4))
		nc := clampCell(int(y>>16), int(x>>16), cfg.CellsX, cfg.CellsY)
		m.result.Moves++
		if cfg.Locality {
			// Copy into the destination arena if it has room.
			if free := m.arenaFree(nc); free >= 0 {
				nva := m.slotVA(free)
				for off := uint32(0); off < 16; off += 4 {
					e.Store32(nva+off, e.Load32(va+off))
				}
				m.result.Recopies++
				slot = free
			}
		}
		m.cells[nc] = append(m.cells[nc], slot)
	}
}

// arenaFree finds a free slot in a cell's arena, or -1.
func (m *MP3D) arenaFree(c int) int32 {
	cfg := m.Cfg
	arena := int32(c * cfg.ParticlesPerCell * 2)
	size := int32(cfg.ParticlesPerCell * 2)
	used := make(map[int32]bool, len(m.cells[c]))
	for _, s := range m.cells[c] {
		used[s] = true
	}
	for s := arena; s < arena+size; s++ {
		if !used[s] {
			return s
		}
	}
	return -1
}

func clampCell(cy, cx, nx, ny int) int {
	if cx < 0 {
		cx = 0
	}
	if cx >= nx {
		cx = nx - 1
	}
	if cy < 0 {
		cy = 0
	}
	if cy >= ny {
		cy = ny - 1
	}
	return cy*nx + cx
}

// Run executes the configured number of steps with Workers threads and
// returns the measurements. It must be called from the application
// kernel's main thread.
func (m *MP3D) Run(e *hw.Exec) (MP3DResult, error) {
	cfg := m.Cfg
	k := m.AK.CK
	me := m.AK.CK // alias

	coordTID, err := currentTID(k, e)
	if err != nil {
		return m.result, err
	}
	bar := &Barrier{K: me, Coord: coordTID}

	crossings := make([][][2]int32, cfg.Workers)
	workers := make([]*aklib.Thread, cfg.Workers)
	for w := 0; w < cfg.Workers; w++ {
		w := w
		workers[w] = m.AK.NewThread(fmt.Sprintf("mp3d%d", w), m.AK.SpaceID, 24,
			func(we *hw.Exec) {
				for s := 0; s < cfg.Steps; s++ {
					t0 := we.Now()
					crossings[w] = m.moveStripe(we, w)
					m.result.moveCycles += we.Now() - t0
					if err := bar.Arrive(we, w); err != nil {
						return
					}
				}
			})
		if err := workers[w].Load(e, false); err != nil {
			return m.result, err
		}
		bar.Workers = append(bar.Workers, workers[w].TID)
	}

	mpm := m.AK.MPM
	mpm.L2.ResetStats()
	for _, cpu := range mpm.CPUs {
		cpu.TLB.ResetStats()
	}
	t0 := e.Now()
	for s := 0; s < cfg.Steps; s++ {
		if err := bar.Gather(e); err != nil {
			return m.result, err
		}
		for w := 0; w < cfg.Workers; w++ {
			m.reindex(e, crossings[w])
		}
		if err := bar.Release(e); err != nil {
			return m.result, err
		}
	}
	elapsed := e.Now() - t0

	m.result.Steps = cfg.Steps
	m.result.CyclesPerStep = float64(elapsed) / float64(cfg.Steps)
	m.result.MicrosPerStep = hw.MicrosFromCycles(elapsed) / float64(cfg.Steps)
	m.result.MoveMicrosPerStep = hw.MicrosFromCycles(m.result.moveCycles) / float64(cfg.Steps)
	m.result.L2HitRate = mpm.L2.HitRate()
	var hits, misses uint64
	for _, cpu := range mpm.CPUs {
		h, ms := cpu.TLB.Stats()
		hits += h
		misses += ms
	}
	if hits+misses > 0 {
		m.result.TLBMissRate = float64(misses) / float64(hits+misses)
	}
	return m.result, nil
}

// currentTID resolves the calling thread's Cache Kernel identifier.
func currentTID(k *ck.Kernel, e *hw.Exec) (ck.ObjID, error) {
	id := k.CurrentThread(e)
	if id == 0 {
		return 0, fmt.Errorf("simk: caller has no thread")
	}
	return id, nil
}
