package dsm

import (
	"math"
	"testing"

	"vpp/internal/aklib"
	"vpp/internal/chaos"
	"vpp/internal/ck"
	"vpp/internal/hw"
	"vpp/internal/hw/dev"
	"vpp/internal/srm"
)

// twoNodesArmed is twoNodes with a chaos injector armed on both fiber
// ports before the workload starts.
func twoNodesArmed(t *testing.T, pages uint32, in *chaos.Injector,
	body0, body1 func(n *Node, e *hw.Exec)) (*Node, *Node) {
	t.Helper()
	cfg := hw.DefaultConfig()
	cfg.MPMs = 2
	m := hw.NewMachine(cfg)
	pa, pb := dev.ConnectFiber(m.MPMs[0], m.MPMs[1], "dsm")
	in.ArmFiber(pa)
	in.ArmFiber(pb)

	var nodes [2]*Node
	ready := [2]bool{}
	mk := func(idx int, mpm *hw.MPM, port *dev.FiberPort, body func(*Node, *hw.Exec)) {
		k, err := ck.New(mpm, ck.Config{})
		if err != nil {
			t.Fatal(err)
		}
		_, err = srm.Start(k, mpm, func(s *srm.SRM, e *hw.Exec) {
			_, err := s.Launch(e, "dsmk", srm.LaunchOpts{Groups: 4, MainPrio: 26},
				func(ak *aklib.AppKernel, me *hw.Exec) {
					n, err := Attach(me, ak, port, idx, 0x6000_0000, pages)
					if err != nil {
						t.Errorf("attach %d: %v", idx, err)
						return
					}
					nodes[idx] = n
					ready[idx] = true
					for !ready[0] || !ready[1] {
						me.Charge(2000)
					}
					body(n, me)
				})
			if err != nil {
				t.Errorf("launch %d: %v", idx, err)
			}
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	mk(0, m.MPMs[0], pa, body0)
	mk(1, m.MPMs[1], pb, body1)

	m.Eng.MaxSteps = 500_000_000
	if err := m.Run(math.MaxUint64); err != nil {
		t.Fatal(err)
	}
	return nodes[0], nodes[1]
}

// TestFetchRetryUnderFiberLoss drops every fiber message node 1 sends
// during the first 10 ms — which eats its first page-fetch request —
// and checks that the coherence rpc's timeout/retransmit path repairs
// it: the read still returns the owner's value and the retry counter
// records the loss.
func TestFetchRetryUnderFiberLoss(t *testing.T) {
	const base = 0x6000_0000
	in := chaos.New(chaos.Plan{Faults: []chaos.Fault{
		{Kind: chaos.DropFrame, Until: hw.CyclesFromMicros(10_000)},
	}})
	var got uint32
	phase := 0
	n0, n1 := twoNodesArmed(t, 2, in,
		func(n *Node, e *hw.Exec) {
			e.Store32(base, 4242)
			phase = 1
			for phase != 2 {
				e.Charge(2000)
			}
		},
		func(n *Node, e *hw.Exec) {
			for phase != 1 {
				e.Charge(2000)
			}
			got = e.Load32(base)
			phase = 2
		})
	if got != 4242 {
		t.Fatalf("read through lossy fiber = %d, want 4242", got)
	}
	if n1.Retries == 0 {
		t.Fatal("no rpc retransmission despite the dropped fetch")
	}
	if in.Stats.FramesDropped == 0 {
		t.Fatal("fault plan dropped nothing")
	}
	if n0.Serves == 0 {
		t.Fatal("owner never served the page")
	}
}
