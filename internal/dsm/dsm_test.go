package dsm

import (
	"math"
	"testing"

	"vpp/internal/aklib"
	"vpp/internal/ck"
	"vpp/internal/hw"
	"vpp/internal/hw/dev"
	"vpp/internal/srm"
)

// twoNodes boots two MPMs with their own Cache Kernels and SRMs, runs
// body0/body1 as launched application kernels sharing a DSM region, and
// drives the machine to quiescence.
func twoNodes(t *testing.T, pages uint32,
	body0, body1 func(n *Node, e *hw.Exec)) (*Node, *Node) {
	t.Helper()
	cfg := hw.DefaultConfig()
	cfg.MPMs = 2
	m := hw.NewMachine(cfg)
	pa, pb := dev.ConnectFiber(m.MPMs[0], m.MPMs[1], "dsm")

	var nodes [2]*Node
	ready := [2]bool{}
	mk := func(idx int, mpm *hw.MPM, port *dev.FiberPort, body func(*Node, *hw.Exec)) {
		k, err := ck.New(mpm, ck.Config{})
		if err != nil {
			t.Fatal(err)
		}
		_, err = srm.Start(k, mpm, func(s *srm.SRM, e *hw.Exec) {
			_, err := s.Launch(e, "dsmk", srm.LaunchOpts{Groups: 4, MainPrio: 26},
				func(ak *aklib.AppKernel, me *hw.Exec) {
					n, err := Attach(me, ak, port, idx, 0x6000_0000, pages)
					if err != nil {
						t.Errorf("attach %d: %v", idx, err)
						return
					}
					nodes[idx] = n
					ready[idx] = true
					for !ready[0] || !ready[1] {
						me.Charge(2000)
					}
					body(n, me)
				})
			if err != nil {
				t.Errorf("launch %d: %v", idx, err)
			}
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	mk(0, m.MPMs[0], pa, body0)
	mk(1, m.MPMs[1], pb, body1)

	m.Eng.MaxSteps = 500_000_000
	if err := m.Run(math.MaxUint64); err != nil {
		t.Fatal(err)
	}
	return nodes[0], nodes[1]
}

func TestReadSharingAndWriteInvalidation(t *testing.T) {
	const base = 0x6000_0000
	var readByN1, readBackByN0 uint32
	phase := 0
	n0, n1 := twoNodes(t, 4,
		func(n *Node, e *hw.Exec) {
			// Node 0 owns everything initially: write a value.
			e.Store32(base, 4242)
			phase = 1
			// Wait for node 1 to overwrite it, then read it back
			// (fetching the page back).
			for phase != 2 {
				e.Charge(2000)
			}
			readBackByN0 = e.Load32(base)
			phase = 3
		},
		func(n *Node, e *hw.Exec) {
			for phase != 1 {
				e.Charge(2000)
			}
			// Read: fetches a shared copy from node 0.
			readByN1 = e.Load32(base)
			// Write: upgrades, invalidating node 0's copy.
			e.Store32(base, 9999)
			phase = 2
			for phase != 3 {
				e.Charge(2000)
			}
		})
	if readByN1 != 4242 {
		t.Fatalf("node 1 read %d, want 4242", readByN1)
	}
	if readBackByN0 != 9999 {
		t.Fatalf("node 0 read back %d, want 9999", readBackByN0)
	}
	if n1.Fetches == 0 {
		t.Fatal("node 1 never fetched")
	}
	if n1.Upgrades == 0 {
		t.Fatal("node 1 never upgraded")
	}
	if n0.Invalidations == 0 {
		t.Fatal("node 0 was never invalidated")
	}
	_ = n0
}

func TestPingPongCounter(t *testing.T) {
	const base = 0x6000_0000
	const rounds = 6
	// The two nodes alternately increment a shared counter; strict
	// alternation is enforced by the counter's parity, so every
	// increment migrates the page.
	inc := func(parity uint32) func(n *Node, e *hw.Exec) {
		return func(n *Node, e *hw.Exec) {
			done := 0
			for done < rounds {
				v := e.Load32(base)
				if v%2 != parity {
					e.Charge(4000)
					continue
				}
				e.Store32(base, v+1)
				done++
			}
		}
	}
	n0, n1 := twoNodes(t, 1, inc(0), inc(1))
	// Final value: 2*rounds increments.
	// Read it from whichever node can (node 0).
	if total := n0.Fetches + n1.Fetches; total < rounds {
		t.Fatalf("only %d fetches for %d migrations", total, 2*rounds)
	}
	if n0.Serves == 0 || n1.Serves == 0 {
		t.Fatalf("serves: %d/%d", n0.Serves, n1.Serves)
	}
}

func TestDisjointPagesDontInterfere(t *testing.T) {
	const base = 0x6000_0000
	var ok0, ok1 bool
	twoNodes(t, 2,
		func(n *Node, e *hw.Exec) {
			for i := 0; i < 20; i++ {
				e.Store32(base, uint32(i))
			}
			ok0 = e.Load32(base) == 19
		},
		func(n *Node, e *hw.Exec) {
			for i := 0; i < 20; i++ {
				e.Store32(base+hw.PageSize, uint32(100+i))
			}
			ok1 = e.Load32(base+hw.PageSize) == 119
		})
	if !ok0 || !ok1 {
		t.Fatalf("independent pages corrupted: %v %v", ok0, ok1)
	}
}

func TestCrossingWriteRequestsResolve(t *testing.T) {
	const base = 0x6000_0000
	// Both nodes hammer the same page with writes at the same time; the
	// deferral tie-break must resolve every crossing without timeout.
	var sum0, sum1 int
	twoNodes(t, 1,
		func(n *Node, e *hw.Exec) {
			for i := 0; i < 10; i++ {
				e.Store32(base, uint32(i))
				sum0++
				e.Charge(1000)
			}
		},
		func(n *Node, e *hw.Exec) {
			for i := 0; i < 10; i++ {
				e.Store32(base+4, uint32(i))
				sum1++
				e.Charge(1000)
			}
		})
	if sum0 != 10 || sum1 != 10 {
		t.Fatalf("writers stalled: %d/%d", sum0, sum1)
	}
}
