// Package dsm implements page-granularity distributed shared memory
// between application kernels on different MPMs — the "explicit
// coordination between kernels, as required for distributed shared
// memory implementation, [that] is provided by higher-level software"
// (paper §3). The Cache Kernel contributes exactly what the paper says
// it should: fault forwarding delivers the misses, mapping load/unload
// moves pages in and out of each node's address space, and the fiber
// channel carries the coherence traffic. The protocol itself — a
// two-node, single-writer/multi-reader invalidation protocol in the IVY
// tradition — lives entirely in user mode.
package dsm

import (
	"encoding/binary"
	"fmt"

	"vpp/internal/aklib"
	"vpp/internal/ck"
	"vpp/internal/hw"
	"vpp/internal/hw/dev"
)

// page coherence states.
type pageMode uint8

const (
	pageInvalid pageMode = iota
	pageShared           // read-only copy; peer may also hold one
	pageOwned            // exclusive writable copy
)

// protocol opcodes.
const (
	msgFetchRead  = 1 // please send the page; keep a shared copy
	msgFetchWrite = 2 // please send the page and relinquish it
	msgInvalidate = 3 // drop your shared copy (upgrade elsewhere)
	msgReply      = 4 // page data (fetch) or ack (invalidate)
)

// Node is one participant's view of a shared region.
type Node struct {
	AK   *aklib.AppKernel
	Port *dev.FiberPort
	ID   int // 0 or 1; node 0 initially owns every page

	Base  uint32
	Pages uint32

	frames []uint32
	state  []pageMode

	netd        *aklib.Thread
	replyWait   bool
	replyPage   uint32
	replyData   []byte
	deferredReq []byte
	faultBusy   bool
	faultPage   uint32
	// pendingInval records that a peer invalidate for replyPage was
	// acknowledged while our own request was in flight: the reply on
	// the wire predates the invalidate, so the waiter must discard it
	// and refault rather than install a stale copy.
	pendingInval bool
	stop         bool

	// Stats.
	Fetches, Upgrades, Invalidations, Serves uint64
	// Retries counts coherence-request retransmissions after a reply
	// timeout (zero unless the fault plan loses fiber frames).
	Retries uint64
}

// Attach creates a node over a shared region of n pages at base in the
// kernel's own space, using the fiber port for coherence traffic. Call
// from the kernel's main thread. Node 0 starts owning (and may
// immediately write) every page; node 1 starts with nothing mapped.
func Attach(e *hw.Exec, ak *aklib.AppKernel, port *dev.FiberPort, id int, base, pages uint32) (*Node, error) {
	n := &Node{
		AK: ak, Port: port, ID: id,
		Base: base, Pages: pages,
		frames: make([]uint32, pages),
		state:  make([]pageMode, pages),
	}
	for i := uint32(0); i < pages; i++ {
		pfn, ok := ak.Frames.Alloc()
		if !ok {
			return nil, fmt.Errorf("dsm: out of frames")
		}
		n.frames[i] = pfn
		if id == 0 {
			n.state[i] = pageOwned
			if err := n.mapPage(e, i, true); err != nil {
				return nil, err
			}
		}
	}
	// Faults in the region resolve through the coherence protocol; the
	// hook sits on the kernel's own segment manager, which receives the
	// forwarded faults regardless of which kernel owns the space.
	ak.Mem.Hooks = append(ak.Mem.Hooks, func(fe *hw.Exec, va uint32, write bool) (bool, bool) {
		if va >= base && va < base+pages*hw.PageSize {
			return true, n.handleFault(fe, va, write)
		}
		return false, false
	})
	// The coherence server thread.
	n.netd = ak.NewThread(fmt.Sprintf("dsm%d", id), ak.SpaceID, 39, n.serve)
	if err := n.netd.Load(e, false); err != nil {
		return nil, err
	}
	port.OnRx = func() {
		if n.netd.Loaded {
			ak.CK.RaiseDeviceSignal(n.netd.TID, 1)
		}
	}
	return n, nil
}

// Stop halts the coherence server.
func (n *Node) Stop(e *hw.Exec) {
	n.stop = true
	if n.netd.Loaded {
		_ = n.AK.CK.PostSignal(e, n.netd.TID, 0)
	}
}

// mapPage loads the page's Cache Kernel mapping at the current rights.
func (n *Node) mapPage(e *hw.Exec, page uint32, writable bool) error {
	return n.AK.CK.LoadMapping(e, n.AK.SpaceID, ck.MappingSpec{
		VA: n.Base + page*hw.PageSize, PFN: n.frames[page],
		Writable: writable, Cachable: true,
	})
}

// unmapPage drops the page's mapping if loaded.
func (n *Node) unmapPage(e *hw.Exec, page uint32) {
	_, _ = n.AK.CK.UnloadMapping(e, n.AK.SpaceID, n.Base+page*hw.PageSize)
}

// handleFault resolves a miss (or write upgrade) through the peer. A
// request the server deferred while our own was outstanding is served
// only after the fault has fully resolved (state updated, mapping
// reloaded): applying a deferred invalidate between the reply and the
// reinstall would let the reinstall resurrect a stale shared copy.
func (n *Node) handleFault(e *hw.Exec, va uint32, write bool) bool {
	n.faultBusy = true
	n.faultPage = (va - n.Base) / hw.PageSize
	ok := n.resolveFault(e, va, write)
	n.faultBusy = false
	if n.deferredReq != nil && !n.replyWait {
		d := n.deferredReq
		n.deferredReq = nil
		n.handleMsg(e, d)
	}
	return ok
}

func (n *Node) resolveFault(e *hw.Exec, va uint32, write bool) bool {
	page := (va - n.Base) / hw.PageSize
	switch n.state[page] {
	case pageOwned:
		// Racing with a concurrent serve that just downgraded us; the
		// mapping is (re)loadable locally.
		return n.mapPage(e, page, true) == nil
	case pageShared:
		if !write {
			return n.mapPage(e, page, false) == nil
		}
		// Upgrade: invalidate the peer's shared copy.
		n.Upgrades++
		if !n.rpc(e, msgInvalidate, page, nil) {
			return false
		}
		if n.pendingInval {
			// Crossing upgrades: the peer invalidated our copy while our
			// own invalidate was in flight. Node 0 wins the tie and
			// completes the upgrade; node 1 concedes, leaving the page
			// invalid so the retried write refaults into a fetch.
			n.pendingInval = false
			if n.ID != 0 {
				return true
			}
		}
		n.state[page] = pageOwned
		n.unmapPage(e, page)
		return n.mapPage(e, page, true) == nil
	default: // invalid: fetch from the peer
		n.Fetches++
		op := byte(msgFetchRead)
		if write {
			op = msgFetchWrite
		}
		if !n.rpc(e, op, page, nil) {
			return false
		}
		if n.pendingInval {
			// The owner upgraded or re-fetched while our reply was on
			// the wire: the data is stale. Drop it and refault — the
			// retried access fetches the fresh copy.
			n.pendingInval = false
			n.state[page] = pageInvalid
			return true
		}
		// Install the received page contents.
		phys := e.MPM.Machine.Phys
		phys.WriteBytes(n.frames[page]<<hw.PageShift, n.replyData)
		e.Charge(hw.PageSize / 4 * hw.CostMemHit)
		if write {
			n.state[page] = pageOwned
		} else {
			n.state[page] = pageShared
		}
		return n.mapPage(e, page, write) == nil
	}
}

// rpc sends a request and spins (in virtual time) for the reply; the
// server thread fills replyData. The faulting thread and the server are
// distinct threads of the same kernel, so incoming requests keep being
// served while we wait — which is what makes crossing requests safe.
func (n *Node) rpc(e *hw.Exec, op byte, page uint32, body []byte) bool {
	n.replyWait = true
	n.replyPage = page
	n.replyData = nil
	n.pendingInval = false
	// Requests are idempotent (the server re-serves the same page and a
	// duplicate reply for a page we no longer wait on is ignored), so a
	// lost request or reply is repaired by retransmission. A healthy
	// fiber answers within microseconds; the retry timer never fires
	// unless the fault plan dropped a frame.
	for attempt := 0; attempt < 4; attempt++ {
		if attempt > 0 {
			n.Retries++
		}
		if err := n.send(e, op, page, body); err != nil {
			return false
		}
		deadline := e.Now() + hw.CyclesFromMicros(500_000)
		for n.replyWait {
			if e.Now() > deadline {
				break
			}
			e.Charge(500)
		}
		if !n.replyWait {
			return true
		}
	}
	return false
}

func (n *Node) send(e *hw.Exec, op byte, page uint32, body []byte) error {
	msg := make([]byte, 5+len(body))
	msg[0] = op
	binary.LittleEndian.PutUint32(msg[1:5], page)
	copy(msg[5:], body)
	return n.Port.Send(e, msg)
}

// serve is the coherence server loop.
func (n *Node) serve(e *hw.Exec) {
	k := n.AK.CK
	for !n.stop {
		if _, err := k.WaitSignal(e); err != nil {
			return
		}
		for {
			msg, ok := n.Port.Recv(e)
			if !ok {
				break
			}
			n.handleMsg(e, msg)
		}
	}
}

func (n *Node) handleMsg(e *hw.Exec, msg []byte) {
	if len(msg) < 5 {
		return
	}
	op := msg[0]
	page := binary.LittleEndian.Uint32(msg[1:5])
	switch op {
	case msgReply:
		if n.replyWait && page == n.replyPage {
			n.replyData = append([]byte(nil), msg[5:]...)
			n.replyWait = false
		}
	case msgInvalidate:
		// An invalidate crossing our own outstanding request is applied
		// immediately (immediate acks are what keep crossing upgrades
		// from deadlocking), but the reply we are waiting on was
		// generated before this invalidate — mark it poisoned so the
		// waiter discards it and refaults. An invalidate arriving after
		// our reply was consumed, while the fault handler is still
		// reinstalling state and mapping, must instead wait: applied
		// now, the reinstall would resurrect the stale copy.
		if n.faultBusy && !n.replyWait && page == n.faultPage {
			n.deferredReq = append([]byte(nil), msg...)
			return
		}
		if n.replyWait && n.replyPage == page {
			n.pendingInval = true
		}
		n.Invalidations++
		n.state[page] = pageInvalid
		n.unmapPage(e, page)
		_ = n.send(e, msgReply, page, nil)
	case msgFetchRead, msgFetchWrite:
		// Crossing-request tie-break: if this node also has a request
		// outstanding for the same page, node 1 defers until its own
		// completes; node 0 serves immediately. A fetch for a page this
		// node is mid-fault on (reply consumed, state and mapping not
		// yet reinstalled) is likewise deferred: serving it early would
		// downgrade the local copy under the fault handler's feet.
		if (n.replyWait && n.replyPage == page && n.ID != 0) ||
			(n.faultBusy && !n.replyWait && page == n.faultPage) {
			n.deferredReq = append([]byte(nil), msg...)
			return
		}
		n.servePage(e, op, page)
	}
	// Serve a deferred request once our own has completed — unless a
	// fault handler is mid-resolution, in which case it serves the
	// deferral itself after reinstalling its mapping.
	if n.deferredReq != nil && !n.replyWait && !n.faultBusy {
		d := n.deferredReq
		n.deferredReq = nil
		n.handleMsg(e, d)
	}
}

// servePage ships the page to the peer, downgrading or invalidating the
// local copy.
func (n *Node) servePage(e *hw.Exec, op byte, page uint32) {
	n.Serves++
	// Stop local access and capture the latest contents.
	n.unmapPage(e, page)
	phys := e.MPM.Machine.Phys
	data := phys.ReadBytes(n.frames[page]<<hw.PageShift, hw.PageSize)
	e.Charge(hw.PageSize / 4 * hw.CostMemHit)
	if op == msgFetchWrite {
		n.state[page] = pageInvalid
	} else {
		n.state[page] = pageShared
		// Keep a read-only mapping loadable on demand (next local read
		// faults and remaps read-only).
	}
	_ = n.send(e, msgReply, page, data)
}

// PageState reports the node's coherence state for page (diagnostics).
func (n *Node) PageState(page uint32) string {
	switch n.state[page] {
	case pageOwned:
		return "owned"
	case pageShared:
		return "shared"
	}
	return "invalid"
}
