// Package pagetable implements Motorola 68040-style three-level page
// tables as used by the Cache Kernel's address-space objects.
//
// A 32-bit virtual address splits 7/7/6/12: a 128-entry root table
// (512 bytes), 128-entry pointer tables (512 bytes) and 64-entry page
// tables (256 bytes) mapping 4 KB pages. These sizes matter: the paper's
// Section 5.2 space-overhead arithmetic (about 5 KB of tables per address
// space, mapping descriptors at twice the third-level table space) depends
// on them, so the reproduction keeps the exact geometry and accounts every
// table against the MPM's local RAM.
package pagetable

import "fmt"

// Geometry constants for the 68040 translation tree.
const (
	PageShift = 12
	PageSize  = 1 << PageShift // 4 KB

	RootEntries = 128 // bits 31..25
	MidEntries  = 128 // bits 24..18
	LeafEntries = 64  // bits 17..12

	// Byte sizes of each table level, as burned into the paper's
	// space-overhead arithmetic.
	RootBytes = RootEntries * 4
	MidBytes  = MidEntries * 4
	LeafBytes = LeafEntries * 4
)

// PTE is a page table entry: a physical frame number plus flag bits.
type PTE uint32

// PTE flag bits. The frame number occupies the top 20 bits (pfn << 12).
const (
	PTEValid PTE = 1 << iota
	PTEWrite
	PTECachable
	PTEMessage // page is in message mode (memory-based messaging)
	PTECopyOnWrite
	PTEReferenced // set by hardware on access
	PTEModified   // set by hardware on write

	pteFlagMask PTE = 1<<PageShift - 1
)

// MakePTE builds an entry mapping the given physical frame with flags.
func MakePTE(pfn uint32, flags PTE) PTE {
	return PTE(pfn<<PageShift) | (flags & pteFlagMask)
}

// PFN extracts the physical frame number.
func (p PTE) PFN() uint32 { return uint32(p) >> PageShift }

// Valid reports whether the entry maps a page.
func (p PTE) Valid() bool { return p&PTEValid != 0 }

// Writable reports whether writes are permitted.
func (p PTE) Writable() bool { return p&PTEWrite != 0 }

// Message reports whether the page is in message mode.
func (p PTE) Message() bool { return p&PTEMessage != 0 }

// Allocator accounts table memory against a backing store (the MPM's
// local RAM in this system). Alloc reports whether the allocation fits.
type Allocator interface {
	Alloc(bytes int) bool
	Free(bytes int)
}

// nopAllocator accepts everything; used when no accounting is wanted.
type nopAllocator struct{}

func (nopAllocator) Alloc(int) bool { return true }
func (nopAllocator) Free(int)       {}

type leaf struct {
	pte  [LeafEntries]PTE
	live int
}

type mid struct {
	tables [MidEntries]*leaf
	live   int
}

// Table is one address space's translation tree.
type Table struct {
	root  [RootEntries]*mid
	alloc Allocator
	bytes int // accounted table bytes, including the root
	pages int // live mappings
}

// ErrNoMem reports that the allocator refused table memory.
var ErrNoMem = fmt.Errorf("pagetable: out of table memory")

// New returns an empty table accounted against alloc (nil for none).
// The root table itself is accounted immediately.
func New(alloc Allocator) (*Table, error) {
	if alloc == nil {
		alloc = nopAllocator{}
	}
	if !alloc.Alloc(RootBytes) {
		return nil, ErrNoMem
	}
	return &Table{alloc: alloc, bytes: RootBytes}, nil
}

func split(va uint32) (ri, mi, li uint32) {
	return va >> 25, (va >> 18) & (MidEntries - 1), (va >> PageShift) & (LeafEntries - 1)
}

// Lookup translates va without modifying the tree.
func (t *Table) Lookup(va uint32) (PTE, bool) {
	ri, mi, li := split(va)
	m := t.root[ri]
	if m == nil {
		return 0, false
	}
	l := m.tables[mi]
	if l == nil {
		return 0, false
	}
	p := l.pte[li]
	if !p.Valid() {
		return 0, false
	}
	return p, true
}

// WalkDepth reports how many table levels a hardware walk of va touches
// (1 root + 1 mid + 1 leaf when present); used for cycle charging.
func (t *Table) WalkDepth(va uint32) int {
	ri, mi, _ := split(va)
	m := t.root[ri]
	if m == nil {
		return 1
	}
	if m.tables[mi] == nil {
		return 2
	}
	return 3
}

// Insert maps va with the given entry, allocating intermediate tables.
// Inserting over an existing valid entry replaces it.
func (t *Table) Insert(va uint32, pte PTE) error {
	if !pte.Valid() {
		return fmt.Errorf("pagetable: inserting invalid PTE for va %#x", va)
	}
	ri, mi, li := split(va)
	m := t.root[ri]
	if m == nil {
		if !t.alloc.Alloc(MidBytes) {
			return ErrNoMem
		}
		m = &mid{}
		t.root[ri] = m
		t.bytes += MidBytes
	}
	l := m.tables[mi]
	if l == nil {
		if !t.alloc.Alloc(LeafBytes) {
			return ErrNoMem
		}
		l = &leaf{}
		m.tables[mi] = l
		m.live++
		t.bytes += LeafBytes
	}
	if !l.pte[li].Valid() {
		l.live++
		t.pages++
	}
	l.pte[li] = pte
	return nil
}

// Remove unmaps va, returning the entry that was present (with its
// hardware-maintained referenced/modified bits) and freeing empty tables.
func (t *Table) Remove(va uint32) (PTE, bool) {
	ri, mi, li := split(va)
	m := t.root[ri]
	if m == nil {
		return 0, false
	}
	l := m.tables[mi]
	if l == nil || !l.pte[li].Valid() {
		return 0, false
	}
	old := l.pte[li]
	l.pte[li] = 0
	l.live--
	t.pages--
	if l.live == 0 {
		m.tables[mi] = nil
		m.live--
		t.alloc.Free(LeafBytes)
		t.bytes -= LeafBytes
		if m.live == 0 {
			t.root[ri] = nil
			t.alloc.Free(MidBytes)
			t.bytes -= MidBytes
		}
	}
	return old, true
}

// SetRM ORs the referenced (and optionally modified) bits into va's entry,
// as the 68040 hardware walker does on access.
func (t *Table) SetRM(va uint32, modified bool) {
	ri, mi, li := split(va)
	m := t.root[ri]
	if m == nil {
		return
	}
	l := m.tables[mi]
	if l == nil || !l.pte[li].Valid() {
		return
	}
	l.pte[li] |= PTEReferenced
	if modified {
		l.pte[li] |= PTEModified
	}
}

// Walk calls fn for every valid mapping in ascending virtual order.
// fn returning false stops the walk.
func (t *Table) Walk(fn func(va uint32, pte PTE) bool) {
	for ri := uint32(0); ri < RootEntries; ri++ {
		m := t.root[ri]
		if m == nil {
			continue
		}
		for mi := uint32(0); mi < MidEntries; mi++ {
			l := m.tables[mi]
			if l == nil {
				continue
			}
			for li := uint32(0); li < LeafEntries; li++ {
				p := l.pte[li]
				if !p.Valid() {
					continue
				}
				va := ri<<25 | mi<<18 | li<<PageShift
				if !fn(va, p) {
					return
				}
			}
		}
	}
}

// Pages reports the number of live mappings.
func (t *Table) Pages() int { return t.pages }

// Bytes reports the accounted table memory, including the root table.
func (t *Table) Bytes() int { return t.bytes }

// Release frees all table memory back to the allocator. The table must
// not be used afterwards.
func (t *Table) Release() {
	for ri := range t.root {
		m := t.root[ri]
		if m == nil {
			continue
		}
		for mi := range m.tables {
			if m.tables[mi] != nil {
				t.alloc.Free(LeafBytes)
				t.bytes -= LeafBytes
			}
		}
		t.alloc.Free(MidBytes)
		t.bytes -= MidBytes
		t.root[ri] = nil
	}
	t.alloc.Free(RootBytes)
	t.bytes -= RootBytes
	t.pages = 0
}
