package pagetable

import "testing"

// BenchmarkInsertLookupRemove measures the three-level table's hot path.
func BenchmarkInsertLookupRemove(b *testing.B) {
	tbl, err := New(nil)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		va := uint32(i%4096) << PageShift
		_ = tbl.Insert(va, MakePTE(uint32(i), PTEValid|PTEWrite))
		if _, ok := tbl.Lookup(va); !ok {
			b.Fatal("lookup miss")
		}
		tbl.Remove(va)
	}
}

// BenchmarkWalkDense measures full-tree iteration over a dense region.
func BenchmarkWalkDense(b *testing.B) {
	tbl, _ := New(nil)
	for i := uint32(0); i < 4096; i++ {
		tbl.Insert(i<<PageShift, MakePTE(i, PTEValid))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := 0
		tbl.Walk(func(uint32, PTE) bool { n++; return true })
		if n != 4096 {
			b.Fatal(n)
		}
	}
}
