package pagetable

import (
	"testing"
	"testing/quick"

	"vpp/internal/sim"
)

// countingAlloc tracks outstanding bytes and can impose a budget.
type countingAlloc struct {
	used, limit int
}

func (a *countingAlloc) Alloc(n int) bool {
	if a.limit > 0 && a.used+n > a.limit {
		return false
	}
	a.used += n
	return true
}
func (a *countingAlloc) Free(n int) { a.used -= n }

func mustNew(t *testing.T, a Allocator) *Table {
	t.Helper()
	tbl, err := New(a)
	if err != nil {
		t.Fatal(err)
	}
	return tbl
}

func TestInsertLookupRemove(t *testing.T) {
	tbl := mustNew(t, nil)
	va := uint32(0x1234_5000)
	if err := tbl.Insert(va, MakePTE(42, PTEValid|PTEWrite)); err != nil {
		t.Fatal(err)
	}
	p, ok := tbl.Lookup(va)
	if !ok || p.PFN() != 42 || !p.Writable() {
		t.Fatalf("lookup = %#x, %v", p, ok)
	}
	if _, ok := tbl.Lookup(va + PageSize); ok {
		t.Fatal("adjacent page should be unmapped")
	}
	old, ok := tbl.Remove(va)
	if !ok || old.PFN() != 42 {
		t.Fatalf("remove = %#x, %v", old, ok)
	}
	if _, ok := tbl.Lookup(va); ok {
		t.Fatal("lookup after remove succeeded")
	}
}

func TestTableSizesMatchPaper(t *testing.T) {
	// Paper §5.2: 512-byte top-level, 512-byte second-level, 256-byte
	// third-level tables mapping 64 pages each.
	if RootBytes != 512 || MidBytes != 512 || LeafBytes != 256 {
		t.Fatalf("table sizes = %d/%d/%d, want 512/512/256",
			RootBytes, MidBytes, LeafBytes)
	}
	if LeafEntries != 64 {
		t.Fatalf("leaf entries = %d, want 64", LeafEntries)
	}
}

func TestSpaceAccounting(t *testing.T) {
	a := &countingAlloc{}
	tbl := mustNew(t, a)
	if a.used != RootBytes {
		t.Fatalf("after New used = %d, want %d", a.used, RootBytes)
	}
	// First mapping allocates one mid and one leaf.
	if err := tbl.Insert(0, MakePTE(1, PTEValid)); err != nil {
		t.Fatal(err)
	}
	want := RootBytes + MidBytes + LeafBytes
	if a.used != want || tbl.Bytes() != want {
		t.Fatalf("used = %d, Bytes = %d, want %d", a.used, tbl.Bytes(), want)
	}
	// A second mapping in the same 256 KB region allocates nothing.
	if err := tbl.Insert(PageSize, MakePTE(2, PTEValid)); err != nil {
		t.Fatal(err)
	}
	if a.used != want {
		t.Fatalf("same-leaf insert allocated: used = %d", a.used)
	}
	// Removing both frees the leaf and mid.
	tbl.Remove(0)
	tbl.Remove(PageSize)
	if a.used != RootBytes {
		t.Fatalf("after removes used = %d, want %d", a.used, RootBytes)
	}
	tbl.Release()
	if a.used != 0 {
		t.Fatalf("after Release used = %d, want 0", a.used)
	}
}

func TestInsertFailsWhenAllocatorRefuses(t *testing.T) {
	a := &countingAlloc{limit: RootBytes + MidBytes} // no room for a leaf
	tbl := mustNew(t, a)
	if err := tbl.Insert(0, MakePTE(1, PTEValid)); err != ErrNoMem {
		t.Fatalf("err = %v, want ErrNoMem", err)
	}
	// A failed insert must not leak a mid table permanently unusable:
	// a later insert within budget still works after raising the limit.
	a.limit = RootBytes + MidBytes + LeafBytes
	if err := tbl.Insert(0, MakePTE(1, PTEValid)); err != nil {
		t.Fatalf("retry failed: %v", err)
	}
}

func TestSetRM(t *testing.T) {
	tbl := mustNew(t, nil)
	va := uint32(0x8000_0000)
	tbl.Insert(va, MakePTE(7, PTEValid|PTEWrite))
	tbl.SetRM(va, false)
	p, _ := tbl.Lookup(va)
	if p&PTEReferenced == 0 || p&PTEModified != 0 {
		t.Fatalf("after read SetRM: %#x", p)
	}
	tbl.SetRM(va, true)
	p, _ = tbl.Lookup(va)
	if p&PTEModified == 0 {
		t.Fatalf("after write SetRM: %#x", p)
	}
	old, _ := tbl.Remove(va)
	if old&PTEModified == 0 {
		t.Fatal("Remove lost the modified bit")
	}
}

func TestWalkDepth(t *testing.T) {
	tbl := mustNew(t, nil)
	va := uint32(0x4000_0000)
	if d := tbl.WalkDepth(va); d != 1 {
		t.Fatalf("empty depth = %d, want 1", d)
	}
	tbl.Insert(va, MakePTE(1, PTEValid))
	if d := tbl.WalkDepth(va); d != 3 {
		t.Fatalf("mapped depth = %d, want 3", d)
	}
	// Same mid, different leaf region.
	if d := tbl.WalkDepth(va + LeafEntries*PageSize); d != 2 {
		t.Fatalf("sibling depth = %d, want 2", d)
	}
}

func TestWalkOrderAndCount(t *testing.T) {
	tbl := mustNew(t, nil)
	vas := []uint32{0xF000_0000, 0x0000_1000, 0x7654_3000, 0x0000_2000}
	for i, va := range vas {
		tbl.Insert(va, MakePTE(uint32(i+1), PTEValid))
	}
	var got []uint32
	tbl.Walk(func(va uint32, _ PTE) bool {
		got = append(got, va)
		return true
	})
	want := []uint32{0x0000_1000, 0x0000_2000, 0x7654_3000, 0xF000_0000}
	if len(got) != len(want) {
		t.Fatalf("walked %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("walk order %v, want %v", got, want)
		}
	}
	if tbl.Pages() != 4 {
		t.Fatalf("Pages = %d, want 4", tbl.Pages())
	}
}

func TestWalkEarlyStop(t *testing.T) {
	tbl := mustNew(t, nil)
	for i := uint32(0); i < 10; i++ {
		tbl.Insert(i*PageSize, MakePTE(i+1, PTEValid))
	}
	n := 0
	tbl.Walk(func(uint32, PTE) bool { n++; return n < 3 })
	if n != 3 {
		t.Fatalf("walked %d entries, want 3", n)
	}
}

func TestInsertInvalidPTERejected(t *testing.T) {
	tbl := mustNew(t, nil)
	if err := tbl.Insert(0, MakePTE(1, 0)); err == nil {
		t.Fatal("inserting invalid PTE succeeded")
	}
}

// TestPropertyInsertRemoveBalance checks, for random mapping sets, that
// inserting then removing everything returns accounting to the baseline
// and that Lookup agrees with a reference map throughout.
func TestPropertyInsertRemoveBalance(t *testing.T) {
	f := func(seed uint64, nOps uint8) bool {
		r := sim.NewRand(seed)
		a := &countingAlloc{}
		tbl, err := New(a)
		if err != nil {
			return false
		}
		ref := map[uint32]PTE{}
		for i := 0; i < int(nOps); i++ {
			va := uint32(r.Intn(1<<20)) << PageShift // 1M page universe
			if r.Intn(2) == 0 {
				pte := MakePTE(uint32(r.Intn(1<<16)), PTEValid|PTEWrite)
				if tbl.Insert(va, pte) != nil {
					return false
				}
				ref[va] = pte
			} else {
				_, okT := tbl.Remove(va)
				_, okR := ref[va]
				if okT != okR {
					return false
				}
				delete(ref, va)
			}
		}
		if tbl.Pages() != len(ref) {
			return false
		}
		for va, pte := range ref {
			got, ok := tbl.Lookup(va)
			if !ok || got != pte {
				return false
			}
			tbl.Remove(va)
		}
		return a.used == RootBytes && tbl.Pages() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
