// Package dbg implements the debugging support the paper folds into the
// Cache Kernel's PROM monitor ("PROM monitor, remote debugging and
// booting support", §5.1) using the caching model's own §2.3 mechanism:
// "a thread being debugged is also unloaded when it hits a breakpoint.
// Its state can then be examined and reloaded on user request."
//
// A breakpoint is a debug trap. The owning application kernel's handler
// forwards it to the Debugger, which unloads the thread — the thread
// simply ceases to be a candidate for execution, no scheduler state
// machinery required — and parks the trap until a continue request
// reloads it. Examination reads the saved ThreadState and the process
// memory through the segment manager. The remote side speaks a tiny
// UDP protocol over the netboot stack, like the original's remote
// debugging over the boot network.
package dbg

import (
	"encoding/binary"
	"fmt"

	"vpp/internal/aklib"
	"vpp/internal/ck"
	"vpp/internal/hw"
	"vpp/internal/netboot"
)

// SysBreakpoint is the debug trap number (chosen clear of the UNIX
// emulator's table).
const SysBreakpoint = 200

// Breakpoint is what a debugged program calls where a breakpoint
// instruction would sit; tag identifies the site.
func Breakpoint(e *hw.Exec, tag uint32) {
	e.Trap(SysBreakpoint, tag)
}

// Stopped describes one thread halted at a breakpoint.
type Stopped struct {
	Thread *aklib.Thread
	Tag    uint32
	State  ck.ThreadState

	// origTID is the identifier the thread held when it hit the
	// breakpoint; the stop is visible only once that identifier no
	// longer names a loaded thread (the unload has completed).
	origTID ck.ObjID
}

// Debugger manages breakpoints for one application kernel.
type Debugger struct {
	AK *aklib.AppKernel

	stopped map[uint32]*Stopped // keyed by stop id
	nextID  uint32

	// Hits counts breakpoints taken.
	Hits uint64
}

// New creates a debugger and hooks the kernel's trap table: the caller's
// existing OnTrap keeps handling everything but SysBreakpoint.
func New(ak *aklib.AppKernel) *Debugger {
	d := &Debugger{AK: ak, stopped: make(map[uint32]*Stopped), nextID: 1}
	prev := ak.OnTrap
	ak.OnTrap = func(e *hw.Exec, thread ck.ObjID, no uint32, args []uint32) (uint32, uint32) {
		if no == SysBreakpoint {
			var tag uint32
			if len(args) > 0 {
				tag = args[0]
			}
			return d.hit(e, thread, tag)
		}
		if prev != nil {
			return prev(e, thread, no, args)
		}
		return ^uint32(0), 0
	}
	return d
}

// hit runs in the stopped thread's context: unload self, wait for the
// continue request, resume.
func (d *Debugger) hit(e *hw.Exec, thread ck.ObjID, tag uint32) (uint32, uint32) {
	d.Hits++
	th := d.AK.ThreadByID(thread)
	if th == nil {
		return ^uint32(0), 1
	}
	id := d.nextID
	d.nextID++
	st := &Stopped{
		Thread:  th,
		Tag:     tag,
		State:   ck.ThreadState{Priority: th.Priority(), Exec: th.Exec},
		origTID: th.TID,
	}
	d.stopped[id] = st

	// Unload self; the trap blocks here until a Continue reloads the
	// thread. The stop becomes visible to List/Examine only once the
	// descriptor is gone, so an examiner can never race the unload.
	tid := th.TID
	th.MarkUnloaded()
	if _, err := d.AK.CK.UnloadThread(e, tid); err != nil {
		delete(d.stopped, id)
		return ^uint32(0), 1
	}
	// Reloaded: back from the breakpoint.
	return id, 0
}

// visible reports whether a stop's unload has completed.
func (d *Debugger) visible(st *Stopped) bool {
	return !d.AK.CK.Loaded(st.origTID)
}

// List reports the currently stopped threads (stop ids in order).
func (d *Debugger) List() []uint32 {
	var ids []uint32
	for id := uint32(1); id < d.nextID; id++ {
		if st, ok := d.stopped[id]; ok && d.visible(st) {
			ids = append(ids, id)
		}
	}
	return ids
}

// Examine returns a stopped thread's saved state.
func (d *Debugger) Examine(id uint32) (*Stopped, bool) {
	st, ok := d.stopped[id]
	if !ok || !d.visible(st) {
		return nil, false
	}
	return st, true
}

// ReadMemory reads n bytes of the stopped thread's address space at va
// through its segment manager (the thread itself is not runnable, but
// its memory is examinable — the paper's "its state can then be
// examined").
func (d *Debugger) ReadMemory(e *hw.Exec, id uint32, va, nbytes uint32) ([]byte, bool) {
	st, ok := d.stopped[id]
	if !ok {
		return nil, false
	}
	sm := d.AK.SpaceManager(st.Thread.SpaceID)
	if sm == nil {
		return nil, false
	}
	out := make([]byte, 0, nbytes)
	for i := uint32(0); i < nbytes; i++ {
		pa, ok := sm.ResolvePA(e, va+i)
		if !ok {
			return nil, false
		}
		e.Charge(hw.CostMemHit)
		out = append(out, e.MPM.Machine.Phys.Read8(pa))
	}
	return out, true
}

// Continue reloads a stopped thread; it resumes inside its breakpoint
// trap.
func (d *Debugger) Continue(e *hw.Exec, id uint32) error {
	st, ok := d.stopped[id]
	if !ok || !d.visible(st) {
		return fmt.Errorf("dbg: no stopped thread %d", id)
	}
	delete(d.stopped, id)
	return st.Thread.Load(e, false)
}

// --- remote protocol over the boot network ---

// UDP port and opcodes of the remote debug protocol.
const (
	Port = 2010

	opList     = 1
	opExamine  = 2
	opRead     = 3
	opContinue = 4
	opReply    = 0x80
)

// Server serves the debugger over a netboot UDP stack; run on a
// dedicated application-kernel thread.
type Server struct {
	D     *Debugger
	Stack *netboot.Stack
	stop  bool
	// Served counts handled requests.
	Served uint64
}

// Serve loops handling requests until Stop.
func (s *Server) Serve(e *hw.Exec) error {
	conn, err := s.Stack.Bind(Port)
	if err != nil {
		return err
	}
	for !s.stop {
		req, ok := conn.Recv(e, hw.CyclesFromMicros(50_000))
		if !ok {
			continue
		}
		if len(req.Payload) < 1 {
			continue
		}
		reply := s.handle(e, req.Payload)
		_ = conn.SendTo(e, req.Src, req.SrcPort, reply)
		s.Served++
	}
	return nil
}

// Stop ends the serve loop at its next poll.
func (s *Server) Stop() { s.stop = true }

func (s *Server) handle(e *hw.Exec, req []byte) []byte {
	op := req[0]
	out := []byte{op | opReply}
	u32 := func(off int) uint32 {
		if len(req) < off+4 {
			return 0
		}
		return binary.LittleEndian.Uint32(req[off:])
	}
	switch op {
	case opList:
		ids := s.D.List()
		out = binary.LittleEndian.AppendUint32(out, uint32(len(ids)))
		for _, id := range ids {
			out = binary.LittleEndian.AppendUint32(out, id)
		}
	case opExamine:
		st, ok := s.D.Examine(u32(1))
		if !ok {
			return append(out, 0)
		}
		out = append(out, 1)
		out = binary.LittleEndian.AppendUint32(out, st.Tag)
		out = binary.LittleEndian.AppendUint32(out, uint32(st.State.Priority))
	case opRead:
		data, ok := s.D.ReadMemory(e, u32(1), u32(5), u32(9)&0x3ff)
		if !ok {
			return append(out, 0)
		}
		out = append(out, 1)
		out = append(out, data...)
	case opContinue:
		if err := s.D.Continue(e, u32(1)); err != nil {
			return append(out, 0)
		}
		out = append(out, 1)
	}
	return out
}

// Client drives a remote debugger from another node.
type Client struct {
	Stack  *netboot.Stack
	Server netboot.IP
	conn   *netboot.UDPConn
}

// Dial binds the client port.
func (c *Client) Dial(port uint16) error {
	conn, err := c.Stack.Bind(port)
	if err != nil {
		return err
	}
	c.conn = conn
	return nil
}

func (c *Client) call(e *hw.Exec, req []byte) ([]byte, error) {
	if err := c.conn.SendTo(e, c.Server, Port, req); err != nil {
		return nil, err
	}
	d, ok := c.conn.Recv(e, hw.CyclesFromMicros(300_000))
	if !ok {
		return nil, fmt.Errorf("dbg: request timed out")
	}
	if len(d.Payload) < 1 || d.Payload[0] != req[0]|opReply {
		return nil, fmt.Errorf("dbg: mismatched reply")
	}
	return d.Payload[1:], nil
}

// List fetches the stopped-thread ids.
func (c *Client) List(e *hw.Exec) ([]uint32, error) {
	b, err := c.call(e, []byte{opList})
	if err != nil {
		return nil, err
	}
	if len(b) < 4 {
		return nil, fmt.Errorf("dbg: short list reply")
	}
	n := binary.LittleEndian.Uint32(b)
	var ids []uint32
	for i := uint32(0); i < n && 4+i*4+4 <= uint32(len(b)); i++ {
		ids = append(ids, binary.LittleEndian.Uint32(b[4+i*4:]))
	}
	return ids, nil
}

// Examine fetches a stopped thread's tag and priority.
func (c *Client) Examine(e *hw.Exec, id uint32) (tag uint32, prio int, err error) {
	req := binary.LittleEndian.AppendUint32([]byte{opExamine}, id)
	b, err := c.call(e, req)
	if err != nil {
		return 0, 0, err
	}
	if len(b) < 9 || b[0] != 1 {
		return 0, 0, fmt.Errorf("dbg: examine failed")
	}
	return binary.LittleEndian.Uint32(b[1:]), int(binary.LittleEndian.Uint32(b[5:])), nil
}

// ReadMemory reads the stopped thread's memory remotely.
func (c *Client) ReadMemory(e *hw.Exec, id, va, n uint32) ([]byte, error) {
	req := binary.LittleEndian.AppendUint32([]byte{opRead}, id)
	req = binary.LittleEndian.AppendUint32(req, va)
	req = binary.LittleEndian.AppendUint32(req, n)
	b, err := c.call(e, req)
	if err != nil {
		return nil, err
	}
	if len(b) < 1 || b[0] != 1 {
		return nil, fmt.Errorf("dbg: read failed")
	}
	return b[1:], nil
}

// Continue resumes a stopped thread remotely.
func (c *Client) Continue(e *hw.Exec, id uint32) error {
	req := binary.LittleEndian.AppendUint32([]byte{opContinue}, id)
	b, err := c.call(e, req)
	if err != nil {
		return err
	}
	if len(b) < 1 || b[0] != 1 {
		return fmt.Errorf("dbg: continue refused")
	}
	return nil
}
