package dbg

import (
	"bytes"
	"math"
	"testing"

	"vpp/internal/aklib"
	"vpp/internal/ck"
	"vpp/internal/hw"
	"vpp/internal/hw/dev"
	"vpp/internal/netboot"
	"vpp/internal/srm"
)

// TestBreakpointUnloadExamineContinue exercises the §2.3 flow locally:
// hit a breakpoint (thread unloaded), examine its state and memory,
// continue (thread reloaded), and observe it finish.
func TestBreakpointUnloadExamineContinue(t *testing.T) {
	m := hw.NewMachine(hw.DefaultConfig())
	k, err := ck.New(m.MPMs[0], ck.Config{})
	if err != nil {
		t.Fatal(err)
	}
	var trail []string
	_, err = srm.Start(k, m.MPMs[0], func(s *srm.SRM, e *hw.Exec) {
		_, err := s.Launch(e, "app", srm.LaunchOpts{Groups: 2, MainPrio: 26},
			func(ak *aklib.AppKernel, me *hw.Exec) {
				d := New(ak)
				if _, err := ak.Mem.Map(me, "data", 0x1000_0000, 2, aklib.SegFlags{Writable: true}, nil); err != nil {
					t.Errorf("map: %v", err)
					return
				}
				// The debugged thread runs in a separate space so the
				// breakpoint trap forwards through the Cache Kernel.
				usid, err := ak.CK.LoadSpace(me, false)
				if err != nil {
					t.Errorf("space: %v", err)
					return
				}
				usm := aklib.NewSegmentManager(ak, usid)
				if _, err := usm.Map(me, "udata", 0x2000_0000, 2, aklib.SegFlags{Writable: true}, nil); err != nil {
					t.Errorf("useg: %v", err)
					return
				}
				th := ak.NewThread("debugged", usid, 20, func(ue *hw.Exec) {
					ue.Store32(0x2000_0000, 0xfeed)
					trail = append(trail, "before")
					Breakpoint(ue, 7)
					trail = append(trail, "after")
				})
				if err := th.Load(me, false); err != nil {
					t.Errorf("load: %v", err)
					return
				}
				// Wait for the breakpoint.
				for len(d.List()) == 0 {
					me.Charge(2000)
				}
				if len(trail) != 1 || trail[0] != "before" {
					t.Errorf("trail at stop = %v", trail)
				}
				if th.Loaded {
					t.Error("debugged thread still loaded at breakpoint")
				}
				id := d.List()[0]
				st, ok := d.Examine(id)
				if !ok || st.Tag != 7 {
					t.Errorf("examine: %+v %v", st, ok)
				}
				mem, ok := d.ReadMemory(me, id, 0x2000_0000, 4)
				if !ok || mem[0] != 0xed || mem[1] != 0xfe {
					t.Errorf("memory = %v %v", mem, ok)
				}
				if err := d.Continue(me, id); err != nil {
					t.Errorf("continue: %v", err)
					return
				}
				for len(trail) != 2 {
					me.Charge(2000)
				}
				if d.Hits != 1 {
					t.Errorf("hits = %d", d.Hits)
				}
			})
		if err != nil {
			t.Errorf("launch: %v", err)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	m.Eng.MaxSteps = 100_000_000
	if err := m.Run(math.MaxUint64); err != nil {
		t.Fatal(err)
	}
	if len(trail) != 2 || trail[1] != "after" {
		t.Fatalf("trail = %v", trail)
	}
}

// TestRemoteDebugOverBootNetwork runs the debug server on one node and
// the client on another, over the netboot UDP stack.
func TestRemoteDebugOverBootNetwork(t *testing.T) {
	m := hw.NewMachine(hw.DefaultConfig())
	k, err := ck.New(m.MPMs[0], ck.Config{})
	if err != nil {
		t.Fatal(err)
	}
	wire := dev.NewWire()
	nicT := dev.AttachNIC(m.MPMs[0], wire, dev.MAC{1}) // target
	nicD := dev.AttachNIC(m.MPMs[0], wire, dev.MAC{2}) // debugger host
	target := netboot.NewStack("target", nicT, netboot.IP{10, 0, 0, 1})
	host := netboot.NewStack("host", nicD, netboot.IP{10, 0, 0, 2})
	target.Start(m.MPMs[0])
	host.Start(m.MPMs[0])

	done := false
	var resumedValue uint32
	_, err = srm.Start(k, m.MPMs[0], func(s *srm.SRM, e *hw.Exec) {
		_, err := s.Launch(e, "app", srm.LaunchOpts{Groups: 2, MainPrio: 26},
			func(ak *aklib.AppKernel, me *hw.Exec) {
				d := New(ak)
				srv := &Server{D: d, Stack: target}
				serverTh := ak.NewThread("dbgd", ak.SpaceID, 24, func(se *hw.Exec) {
					_ = srv.Serve(se)
				})
				if err := serverTh.Load(me, false); err != nil {
					t.Errorf("server: %v", err)
					return
				}
				usid, _ := ak.CK.LoadSpace(me, false)
				usm := aklib.NewSegmentManager(ak, usid)
				usm.Map(me, "udata", 0x2000_0000, 1, aklib.SegFlags{Writable: true}, nil)
				th := ak.NewThread("debugged", usid, 20, func(ue *hw.Exec) {
					ue.Store32(0x2000_0000, 0xabcd)
					Breakpoint(ue, 42)
					resumedValue = ue.Load32(0x2000_0000)
				})
				_ = th.Load(me, false)
				for !done {
					me.Charge(hw.CyclesFromMicros(2000))
				}
				srv.Stop()
			})
		if err != nil {
			t.Errorf("launch: %v", err)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	// The remote debugger runs as a device execution on the host node.
	m.MPMs[0].NewDeviceExec("remote-dbg", func(e *hw.Exec) {
		e.Charge(hw.CyclesFromMicros(2000))
		c := &Client{Stack: host, Server: netboot.IP{10, 0, 0, 1}}
		if err := c.Dial(3001); err != nil {
			t.Error(err)
			return
		}
		var ids []uint32
		for len(ids) == 0 {
			var err error
			ids, err = c.List(e)
			if err != nil {
				t.Error(err)
				return
			}
			e.Charge(hw.CyclesFromMicros(5000))
		}
		tag, prio, err := c.Examine(e, ids[0])
		if err != nil || tag != 42 {
			t.Errorf("examine: tag=%d prio=%d err=%v", tag, prio, err)
		}
		mem, err := c.ReadMemory(e, ids[0], 0x2000_0000, 4)
		if err != nil || !bytes.Equal(mem, []byte{0xcd, 0xab, 0, 0}) {
			t.Errorf("memory = %v err=%v", mem, err)
		}
		if err := c.Continue(e, ids[0]); err != nil {
			t.Errorf("continue: %v", err)
		}
		e.Charge(hw.CyclesFromMicros(5000))
		done = true
	})
	m.Eng.MaxSteps = 300_000_000
	if err := m.Run(math.MaxUint64); err != nil {
		t.Fatal(err)
	}
	if resumedValue != 0xabcd {
		t.Fatalf("debugged thread never resumed (value %#x)", resumedValue)
	}
}
