package srm

import (
	"fmt"
	"sort"
)

// Ledger is the snapshot of an SRM's resource bookkeeping: the
// page-group free list, every launched kernel's name and granted
// groups, and the installed service names. It is the part of SRM state
// that is pure data — the threads behind the services and kernels are
// execution state and belong to the machine snapshot's other layers.
type Ledger struct {
	// FreeGroups is the allocator's free list in exact stack order, so
	// post-restore grants pop the same groups the parent would have.
	FreeGroups []uint32
	// Grants maps launched-kernel names (sorted) to their granted
	// page-group lists.
	Grants []Grant
	// Services lists installed service names in sorted order.
	Services []string
}

// Grant is one launched kernel's page-group grant.
type Grant struct {
	Name   string
	Groups []uint32
}

// Ledger captures the SRM's resource bookkeeping.
func (s *SRM) Ledger() Ledger {
	led := Ledger{
		FreeGroups: append([]uint32(nil), s.groups.free...),
		Services:   s.serviceNames(),
	}
	names := make([]string, 0, len(s.launched))
	for n := range s.launched {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		led.Grants = append(led.Grants, Grant{
			Name:   n,
			Groups: append([]uint32(nil), s.launched[n].groups...),
		})
	}
	return led
}

// RestoreLedger rewinds the SRM's resource bookkeeping to a captured
// ledger. The launched kernels and services the ledger names must
// already exist (a restore rebuilds them through the normal launch
// path before replaying the ledger); their grant lists and the
// allocator free list are overwritten with the captured values.
func (s *SRM) RestoreLedger(led Ledger) error {
	for _, g := range led.Grants {
		l, ok := s.launched[g.Name]
		if !ok {
			return fmt.Errorf("srm: ledger names unknown launched kernel %q", g.Name)
		}
		l.groups = append([]uint32(nil), g.Groups...)
	}
	for _, n := range led.Services {
		if _, ok := s.services[n]; !ok {
			return fmt.Errorf("srm: ledger names unknown service %q", n)
		}
	}
	s.groups.free = append(s.groups.free[:0], led.FreeGroups...)
	return nil
}
