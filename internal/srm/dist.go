package srm

import (
	"encoding/binary"
	"fmt"

	"vpp/internal/aklib"
	"vpp/internal/hw"
	"vpp/internal/hw/dev"
)

// Distributed SRM coordination (paper §3): "The SRM communicates with
// other instances of itself on other MPMs using the RPC facility,
// coordinating to provide distributed scheduling ... The SRM is
// replicated on each MPM for failure autonomy between MPMs."
//
// Each SRM runs a network thread that serves a small protocol over a
// fiber-channel link: load reports for distributed scheduling decisions,
// and remote-launch requests so work can be placed on the least loaded
// MPM. A link failure only severs coordination — each SRM keeps running
// its own MPM, which is the fault-containment property the replication
// exists for.

// Peer message opcodes.
const (
	peerLoadReport   = 1
	peerLaunchReq    = 2
	peerLaunchReply  = 3
	peerReportPlease = 4
)

// LoadReport summarizes one MPM's load for distributed scheduling.
type LoadReport struct {
	LoadedThreads uint32
	FreeGroups    uint32
	At            uint64
}

// PeerLink is one SRM's end of a fiber link to a peer SRM.
type PeerLink struct {
	S    *SRM
	Port *dev.FiberPort

	netd *aklib.Thread

	// Remote is the latest load report from the peer.
	Remote LoadReport
	// launches counts remote-launch requests served locally.
	Served uint64

	// services the peer may launch here by name, with their launch
	// options.
	services    map[string]func(ak *aklib.AppKernel, e *hw.Exec)
	serviceOpts map[string]LaunchOpts

	pendingReply []byte
	replyFor     uint32
	nextSeq      uint32
	stop         bool
}

// RegisterService makes a named application-kernel main launchable by
// the peer.
func (l *PeerLink) RegisterService(name string, opts LaunchOpts, main func(ak *aklib.AppKernel, e *hw.Exec)) {
	l.services[name] = main
	l.serviceOpts[name] = opts
}

// ConnectPeer starts the SRM's network thread on a fiber port. Call from
// the SRM's main thread.
func (s *SRM) ConnectPeer(e *hw.Exec, port *dev.FiberPort) (*PeerLink, error) {
	l := &PeerLink{
		S: s, Port: port,
		services:    make(map[string]func(*aklib.AppKernel, *hw.Exec)),
		serviceOpts: make(map[string]LaunchOpts),
	}
	l.netd = s.NewThread("netd", s.SpaceID, 38, func(ne *hw.Exec) { l.serve(ne) })
	if err := l.netd.Load(e, false); err != nil {
		return nil, err
	}
	port.OnRx = func() {
		if l.netd.Loaded {
			s.CK.RaiseDeviceSignal(l.netd.TID, 1)
		}
	}
	return l, nil
}

// Stop halts the network thread after its next message.
func (l *PeerLink) Stop(e *hw.Exec) {
	l.stop = true
	if l.netd.Loaded {
		_ = l.S.CK.PostSignal(e, l.netd.TID, 0)
	}
}

// serve is the network thread's loop.
func (l *PeerLink) serve(e *hw.Exec) {
	k := l.S.CK
	for !l.stop {
		if _, err := k.WaitSignal(e); err != nil {
			return
		}
		for {
			msg, ok := l.Port.Recv(e)
			if !ok {
				break
			}
			l.handle(e, msg)
		}
	}
}

func (l *PeerLink) handle(e *hw.Exec, msg []byte) {
	if len(msg) < 5 {
		return
	}
	op := msg[0]
	seq := binary.LittleEndian.Uint32(msg[1:5])
	body := msg[5:]
	switch op {
	case peerLoadReport:
		if len(body) >= 16 {
			l.Remote = LoadReport{
				LoadedThreads: binary.LittleEndian.Uint32(body[0:4]),
				FreeGroups:    binary.LittleEndian.Uint32(body[4:8]),
				At:            binary.LittleEndian.Uint64(body[8:16]),
			}
		}
	case peerReportPlease:
		_ = l.sendReport(e, seq)
	case peerLaunchReq:
		name := string(body)
		ok := byte(0)
		if main, exists := l.services[name]; exists {
			if _, err := l.S.Launch(e, fmt.Sprintf("%s@remote%d", name, seq), l.serviceOpts[name], main); err == nil {
				ok = 1
				l.Served++
			}
		}
		_ = l.send(e, peerLaunchReply, seq, []byte{ok})
	case peerLaunchReply:
		if seq == l.replyFor {
			l.pendingReply = append([]byte(nil), body...)
		}
	}
}

// send transmits one protocol message.
func (l *PeerLink) send(e *hw.Exec, op byte, seq uint32, body []byte) error {
	msg := make([]byte, 5+len(body))
	msg[0] = op
	binary.LittleEndian.PutUint32(msg[1:5], seq)
	copy(msg[5:], body)
	return l.Port.Send(e, msg)
}

// sendReport transmits the local load report.
func (l *PeerLink) sendReport(e *hw.Exec, seq uint32) error {
	body := make([]byte, 16)
	binary.LittleEndian.PutUint32(body[0:4], uint32(l.S.CK.Stats.ThreadLoads-l.S.CK.Stats.ThreadUnloads))
	binary.LittleEndian.PutUint32(body[4:8], uint32(l.S.groups.Available()))
	binary.LittleEndian.PutUint64(body[8:16], e.Now())
	return l.send(e, peerLoadReport, seq, body)
}

// QueryPeerLoad asks the peer for a load report and waits briefly for
// it. Call from the SRM main thread (not the network thread).
func (l *PeerLink) QueryPeerLoad(e *hw.Exec) (LoadReport, bool) {
	before := l.Remote.At
	l.nextSeq++
	if err := l.send(e, peerReportPlease, l.nextSeq, nil); err != nil {
		return LoadReport{}, false
	}
	deadline := e.Now() + hw.CyclesFromMicros(50_000)
	for l.Remote.At <= before {
		if e.Now() > deadline {
			return LoadReport{}, false
		}
		e.Charge(1000)
	}
	return l.Remote, true
}

// RemoteLaunch asks the peer SRM to launch one of its registered
// services, waiting for the reply.
func (l *PeerLink) RemoteLaunch(e *hw.Exec, name string) error {
	l.nextSeq++
	l.replyFor = l.nextSeq
	l.pendingReply = nil
	if err := l.send(e, peerLaunchReq, l.nextSeq, []byte(name)); err != nil {
		return err
	}
	deadline := e.Now() + hw.CyclesFromMicros(200_000)
	for l.pendingReply == nil {
		if e.Now() > deadline {
			return fmt.Errorf("srm: remote launch of %q timed out", name)
		}
		e.Charge(1000)
	}
	if l.pendingReply[0] != 1 {
		return fmt.Errorf("srm: peer refused launch of %q", name)
	}
	return nil
}
