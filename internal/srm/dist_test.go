package srm

import (
	"math"
	"testing"

	"vpp/internal/aklib"
	"vpp/internal/ck"
	"vpp/internal/hw"
	"vpp/internal/hw/dev"
)

// TestDistributedSRMLoadReportsAndRemoteLaunch boots two MPMs, each with
// its own Cache Kernel and SRM, connected by a fiber channel. SRM 0
// queries SRM 1's load, then launches a registered service there.
func TestDistributedSRMLoadReportsAndRemoteLaunch(t *testing.T) {
	cfg := hw.DefaultConfig()
	cfg.MPMs = 2
	m := hw.NewMachine(cfg)
	pa, pb := dev.ConnectFiber(m.MPMs[0], m.MPMs[1], "srm-link")

	k0, err := ck.New(m.MPMs[0], ck.Config{})
	if err != nil {
		t.Fatal(err)
	}
	k1, err := ck.New(m.MPMs[1], ck.Config{})
	if err != nil {
		t.Fatal(err)
	}

	remoteRan := false
	var link1 *PeerLink
	ready1 := false
	_, err = Start(k1, m.MPMs[1], func(s *SRM, e *hw.Exec) {
		var err error
		link1, err = s.ConnectPeer(e, pb)
		if err != nil {
			t.Errorf("connect peer 1: %v", err)
			return
		}
		link1.RegisterService("analytics", LaunchOpts{Groups: 2, MainPrio: 22},
			func(ak *aklib.AppKernel, me *hw.Exec) {
				me.Charge(hw.CyclesFromMicros(200))
				remoteRan = true
			})
		ready1 = true
	})
	if err != nil {
		t.Fatal(err)
	}

	var gotLoad LoadReport
	var loadOK bool
	var launchErr error
	_, err = Start(k0, m.MPMs[0], func(s *SRM, e *hw.Exec) {
		link0, err := s.ConnectPeer(e, pa)
		if err != nil {
			t.Errorf("connect peer 0: %v", err)
			return
		}
		for !ready1 {
			e.Charge(2000)
		}
		gotLoad, loadOK = link0.QueryPeerLoad(e)
		launchErr = link0.RemoteLaunch(e, "analytics")
		if err := link0.RemoteLaunch(e, "no-such-service"); err == nil {
			t.Error("launch of unregistered service succeeded")
		}
		for !remoteRan {
			e.Charge(2000)
		}
		link0.Stop(e)
		link1.Stop(e)
	})
	if err != nil {
		t.Fatal(err)
	}

	m.Eng.MaxSteps = 200_000_000
	if err := m.Run(math.MaxUint64); err != nil {
		t.Fatal(err)
	}
	if !loadOK {
		t.Fatal("no load report received")
	}
	if gotLoad.LoadedThreads == 0 {
		t.Fatalf("peer reported %d loaded threads", gotLoad.LoadedThreads)
	}
	if launchErr != nil {
		t.Fatalf("remote launch: %v", launchErr)
	}
	if !remoteRan {
		t.Fatal("remote service never ran")
	}
	if link1.Served != 1 {
		t.Fatalf("peer served %d launches", link1.Served)
	}
	// The remote kernel ran on MPM 1's Cache Kernel, not MPM 0's.
	if k1.Stats.KernelLoads < 2 {
		t.Fatalf("MPM1 kernel loads = %d, want >= 2 (SRM + analytics)", k1.Stats.KernelLoads)
	}
}

// TestMPMFaultContainment: killing every execution of one MPM leaves the
// other MPM's Cache Kernel fully operational (the replication rationale).
func TestMPMFaultContainment(t *testing.T) {
	cfg := hw.DefaultConfig()
	cfg.MPMs = 2
	m := hw.NewMachine(cfg)
	k0, _ := ck.New(m.MPMs[0], ck.Config{})
	k1, _ := ck.New(m.MPMs[1], ck.Config{})

	// MPM 0's SRM "fails" (its boot thread just stops).
	_, err := Start(k0, m.MPMs[0], func(s *SRM, e *hw.Exec) {
		e.Charge(1000)
		// Simulated MPM failure: the kernel simply stops making progress.
	})
	if err != nil {
		t.Fatal(err)
	}
	survived := false
	_, err = Start(k1, m.MPMs[1], func(s *SRM, e *hw.Exec) {
		e.Charge(hw.CyclesFromMicros(5000)) // well past MPM 0's demise
		sid, err := s.CK.LoadSpace(e, false)
		if err != nil {
			t.Errorf("survivor LoadSpace: %v", err)
			return
		}
		pfn, _ := s.Frames.Alloc()
		if err := s.CK.LoadMapping(e, sid, ck.MappingSpec{VA: 0x1000_0000, PFN: pfn, Writable: true}); err != nil {
			t.Errorf("survivor LoadMapping: %v", err)
			return
		}
		survived = true
	})
	if err != nil {
		t.Fatal(err)
	}
	m.Eng.MaxSteps = 50_000_000
	if err := m.Run(math.MaxUint64); err != nil {
		t.Fatal(err)
	}
	if !survived {
		t.Fatal("surviving MPM could not operate")
	}
}
