package srm

import (
	"fmt"
	"strings"

	"vpp/internal/ck"
	"vpp/internal/hw"
)

// Crash recovery (paper §3): the Cache Kernel holds nothing an
// application kernel cannot regenerate, so a crash-reboot of an MPM's
// instance costs latency, not state. The SRM proves it: a guardian
// engine — modeled as a device execution, so it survives the reset
// that kills the CPUs' contexts — polls the SRM's dependency records,
// detects that its kernel identifier no longer validates, re-boots the
// SRM as the first kernel and replays the Unswap reload path for every
// launched kernel. Each recovered kernel then rebuilds its own threads
// from its backing records via its OnRecover hook.

// recoverPrio is the priority of per-kernel recovery threads: above
// ordinary application work so recovery completes promptly, below the
// SRM's boot thread.
const recoverPrio = 45

// RecoveryReport is the virtual-time breakdown of one recovery.
type RecoveryReport struct {
	// CrashEpoch is the Cache Kernel epoch this recovery established.
	CrashEpoch uint64
	// DetectAt is when the guardian observed that the SRM's kernel
	// identifier stopped validating (detection latency is DetectAt
	// minus the crash time, which only the fault plan knows).
	DetectAt uint64
	// RebootAt is when the Cache Kernel was re-booted with the SRM as
	// first kernel (the CPUs had drained their killed contexts).
	RebootAt uint64
	// ReloadAt is when every launched kernel was reloaded and its
	// recovery thread dispatched.
	ReloadAt uint64
	// FirstResume is the first post-reboot dispatch of a non-SRM
	// thread — the moment application progress restarts (0 if no
	// application kernel was launched or none resumed in the guard
	// window).
	FirstResume uint64
	// Kernels counts launched kernels reloaded; Revived counts main
	// threads whose execution context died in the crash and was
	// recreated from its body; Services counts SRM service threads
	// restarted from their bodies.
	Kernels  int
	Revived  int
	Services int
	// Err records the first reload failure, if any.
	Err error
}

// GuardConfig configures the SRM's recovery guardian.
type GuardConfig struct {
	// Interval is the virtual-time probe period in cycles.
	Interval uint64
	// Until retires the guardian at this virtual time; it must be set
	// for workloads that expect the engine to quiesce, because a
	// guardian with no horizon probes forever.
	Until uint64
	// OnRecovered observes each completed recovery.
	OnRecovered func(r *RecoveryReport)
}

// Guardian is the detection/recovery engine for one SRM.
type Guardian struct {
	S       *SRM
	Cfg     GuardConfig
	Reports []*RecoveryReport

	stopped bool
}

// Guard starts a guardian probing the SRM's dependency records every
// Interval cycles of virtual time.
func (s *SRM) Guard(cfg GuardConfig) *Guardian {
	if cfg.Interval == 0 {
		cfg.Interval = 500 * hw.CyclesPerMicrosecond
	}
	g := &Guardian{S: s, Cfg: cfg}
	s.MPM.NewDeviceExec("srm/guard", g.run)
	return g
}

// Stop retires the guardian at its next probe.
func (g *Guardian) Stop() { g.stopped = true }

func (g *Guardian) run(e *hw.Exec) {
	for !g.stopped {
		if g.Cfg.Until != 0 && e.Now() >= g.Cfg.Until {
			return
		}
		e.Charge(g.Cfg.Interval)
		if g.stopped {
			return
		}
		// The probe: validate the SRM's own kernel identifier. A loaded
		// first kernel is locked in the cache, so the identifier failing
		// can only mean the instance rebooted underneath us.
		e.Charge(hw.CostInstr * 16)
		if g.S.CK.Loaded(g.S.ID) {
			continue
		}
		r := g.S.Recover(e)
		g.Reports = append(g.Reports, r)
		// Wait (bounded) for the first application thread to resume, so
		// the report's breakdown is complete before it is published.
		if r.Err == nil && r.Kernels > 0 {
			deadline := e.Now() + hw.CyclesFromMicros(200_000)
			for r.FirstResume == 0 && e.Now() < deadline {
				e.Charge(g.Cfg.Interval)
			}
		}
		if g.Cfg.OnRecovered != nil {
			g.Cfg.OnRecovered(r)
		}
	}
}

// Recover rebuilds the Cache Kernel's state after a crash-reboot: it
// drains the killed contexts off the CPUs, discards every stale
// identifier the libraries held, re-boots the SRM, and replays the
// Unswap path for each launched kernel. Main threads whose contexts
// died are recreated from their bodies; kernels with an OnRecover hook
// additionally get a fresh recovery thread in their own space to
// reload their internal threads. It must run outside any Cache Kernel
// thread (the guardian's device execution).
//
// Threads that were parked (blocked or ready) at the crash resume
// exactly where they stopped once reloaded; only contexts that were
// running on a CPU are lost. A pre-crash SRM main that neither
// returned nor was killed stays parked forever — crash-aware workloads
// structure their SRM main to return after setup.
func (s *SRM) Recover(e *hw.Exec) *RecoveryReport {
	k := s.CK
	r := &RecoveryReport{DetectAt: e.Now(), CrashEpoch: k.Epoch}
	s.rtrace("recover-detect", r.DetectAt,
		fmt.Sprintf("stale kernel id %v; instance is at epoch %d", s.ID, k.Epoch))
	// Killed contexts unwind at their next charge point; Boot needs the
	// CPUs idle.
	for {
		busy := false
		for _, cpu := range s.MPM.CPUs {
			if cpu.Cur != nil {
				busy = true
			}
		}
		if !busy {
			break
		}
		e.Charge(hw.CostInstr * 16)
	}
	// Every identifier minted before the crash is dead. Discard the
	// libraries' loaded-state records; backing records stay.
	oldSID := s.SpaceID
	s.InvalidateLoadedState()
	s.DetachSpace(oldSID)
	names := s.launchedNames()
	for _, n := range names {
		l := s.launched[n]
		l.AK.InvalidateLoadedState()
		s.DetachSpace(l.SID)
		l.AK.DetachSpace(l.SID)
		l.KID, l.SID = 0, 0
		if l.Main != nil {
			l.Main.MarkUnloaded()
		}
	}

	// Re-boot. The boot thread runs the reload sequence on CPU 0 while
	// the guardian waits; timestamps are taken on the boot thread's
	// clock so they reflect charged reload work.
	cpu0 := s.MPM.CPUs[0]
	cpu0.Clock.AdvanceTo(e.Now())
	r.RebootAt = e.Now()
	s.rtrace("recover-reboot", r.RebootAt, "CPUs drained; re-booting SRM as first kernel")
	k.OnDispatch = func(_ ck.ObjID, name string, now uint64) {
		if strings.HasPrefix(name, "srm/") {
			return
		}
		r.FirstResume = now
		k.OnDispatch = nil
		s.rtrace("recover-resume", now, fmt.Sprintf("first application dispatch: %q", name))
	}
	done := false
	attrs := s.Attrs()
	attrs.Name = "srm"
	boot, err := k.Boot(attrs, 50, func(be *hw.Exec) {
		s.AdoptThread("boot", s.Boot.Thread, s.Boot.Space, be, 50)
		for _, n := range names {
			l := s.launched[n]
			if l.Main != nil && l.Main.Exec.Finished() && l.Main.Revive() {
				r.Revived++
				s.rtrace("recover-revive", be.Now(),
					fmt.Sprintf("main of %q recreated from its body", n))
			}
			if err := s.Unswap(be, n); err != nil {
				if r.Err == nil {
					r.Err = err
				}
				continue
			}
			r.Kernels++
			s.rtrace("recover-reload", be.Now(),
				fmt.Sprintf("kernel %q unswapped (kid %v)", n, l.KID))
			if l.AK.OnRecover != nil {
				rt := l.AK.NewThread("recover", l.SID, recoverPrio, l.AK.OnRecover)
				if err := rt.Load(be, false); err != nil && r.Err == nil {
					r.Err = err
				}
			}
		}
		// Restart registered service threads. A pre-crash service context
		// is unrecoverable even when it was parked off-CPU: its pending
		// alarm deliveries are generation-checked against a descriptor
		// that no longer exists, so it would wait forever. Kill it and
		// regenerate from the body (services are written to set up from
		// the top).
		for _, n := range s.serviceNames() {
			t := s.services[n]
			t.Retire()
			if !t.Rehome() {
				continue
			}
			t.SpaceID = s.SpaceID
			if err := t.Load(be, true); err != nil {
				if r.Err == nil {
					r.Err = err
				}
				continue
			}
			r.Services++
			s.rtrace("recover-service", be.Now(),
				fmt.Sprintf("service %q restarted from its body", n))
		}
		r.ReloadAt = be.Now()
		done = true
	})
	if err != nil {
		r.Err = err
		k.OnDispatch = nil
		return r
	}
	s.Boot = boot
	s.ID = boot.Kernel
	s.SpaceID = boot.Space
	if s.Mem != nil {
		s.Mem.SID = boot.Space
		s.AttachSpace(boot.Space, s.Mem)
	}
	for !done {
		e.Charge(hw.CostInstr * 16)
	}
	return r
}

// rtrace emits a recovery event through the Cache Kernel's Trace hook;
// these events only fire on the recovery path.
func (s *SRM) rtrace(event string, now uint64, detail string) {
	if s.CK.Trace != nil {
		s.CK.Trace(event, now, detail)
	}
}

// launchedNames returns the launched kernel names in deterministic
// order.
func (s *SRM) launchedNames() []string {
	names := make([]string, 0, len(s.launched))
	//ckvet:allow detmap keys are collected then sorted before use
	for n := range s.launched {
		names = append(names, n)
	}
	for i := 1; i < len(names); i++ {
		for j := i; j > 0 && names[j] < names[j-1]; j-- {
			names[j], names[j-1] = names[j-1], names[j]
		}
	}
	return names
}
