package srm

import "errors"

// Typed SRM errors, so callers (and the chaos test suite) can assert on
// failure kinds with errors.Is instead of matching message strings.
// Load failures underneath Launch/Swap/Unswap wrap the ck error, so
// errors.Is also reaches ck.ErrInvalidID and friends.
var (
	// ErrAlreadyLaunched reports a Launch under a name already in use.
	ErrAlreadyLaunched = errors.New("srm: kernel already launched")
	// ErrUnknownKernel reports an operation on a name never launched.
	ErrUnknownKernel = errors.New("srm: unknown kernel")
	// ErrNoCapacity reports an exhausted physical resource (page groups).
	ErrNoCapacity = errors.New("srm: out of page groups")
	// ErrNotSwapped reports an Unswap of a kernel that is still loaded.
	ErrNotSwapped = errors.New("srm: kernel not swapped")
	// ErrNotRehomable reports an Adopt of a kernel whose main thread has
	// no body to regenerate an execution context from on the new MPM.
	ErrNotRehomable = errors.New("srm: main thread not rehomable")
	// ErrServiceExists reports an AddService under a name already in use.
	ErrServiceExists = errors.New("srm: service already installed")
)
