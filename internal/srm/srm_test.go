package srm

import (
	"math"
	"testing"

	"vpp/internal/aklib"
	"vpp/internal/ck"
	"vpp/internal/hw"
)

// startMachine boots a machine with an SRM whose main is fn and runs it
// to quiescence.
func startMachine(t *testing.T, fn func(s *SRM, e *hw.Exec)) (*hw.Machine, *ck.Kernel) {
	t.Helper()
	m := hw.NewMachine(hw.DefaultConfig())
	k, err := ck.New(m.MPMs[0], ck.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Start(k, m.MPMs[0], fn); err != nil {
		t.Fatal(err)
	}
	m.Eng.MaxSteps = 100_000_000
	if err := m.Run(math.MaxUint64); err != nil {
		t.Fatal(err)
	}
	return m, k
}

func TestSRMLaunchAppKernelWithOwnMemory(t *testing.T) {
	var readBack uint32
	ran := false
	startMachine(t, func(s *SRM, e *hw.Exec) {
		_, err := s.Launch(e, "app", LaunchOpts{Groups: 2, MainPrio: 20}, func(ak *aklib.AppKernel, me *hw.Exec) {
			ran = true
			// The app kernel maps a heap in its own space and uses it;
			// pages fault in on demand through its segment manager via
			// the SRM's forwarding.
			if _, err := ak.Mem.Map(me, "heap", 0x1000_0000, 16, aklib.SegFlags{Writable: true}, nil); err != nil {
				t.Errorf("map heap: %v", err)
				return
			}
			me.Store32(0x1000_0000+8, 4242)
			readBack = me.Load32(0x1000_0000 + 8)
		})
		if err != nil {
			t.Fatalf("launch: %v", err)
		}
	})
	if !ran {
		t.Fatal("app kernel main never ran")
	}
	if readBack != 4242 {
		t.Fatalf("read back %d", readBack)
	}
}

func TestAppKernelRunsUserProcess(t *testing.T) {
	var got uint32
	startMachine(t, func(s *SRM, e *hw.Exec) {
		_, err := s.Launch(e, "app", LaunchOpts{Groups: 2, MainPrio: 20}, func(ak *aklib.AppKernel, me *hw.Exec) {
			k := ak.CK
			// Create a user process: its own space, segment, thread.
			usid, err := k.LoadSpace(me, false)
			if err != nil {
				t.Errorf("user space: %v", err)
				return
			}
			usm := aklib.NewSegmentManager(ak, usid)
			if _, err := usm.Map(me, "data", 0x2000_0000, 8, aklib.SegFlags{Writable: true}, nil); err != nil {
				t.Errorf("user segment: %v", err)
				return
			}
			done := false
			uth := ak.NewThread("user", usid, 15, func(ue *hw.Exec) {
				ue.Store32(0x2000_0000, 99)
				got = ue.Load32(0x2000_0000)
				done = true
			})
			if err := uth.Load(me, false); err != nil {
				t.Errorf("user thread: %v", err)
				return
			}
			for !done {
				me.Charge(2000)
			}
		})
		if err != nil {
			t.Fatalf("launch: %v", err)
		}
	})
	if got != 99 {
		t.Fatalf("user read %d", got)
	}
}

func TestAppKernelDeniedUnauthorizedFrames(t *testing.T) {
	startMachine(t, func(s *SRM, e *hw.Exec) {
		_, err := s.Launch(e, "app", LaunchOpts{Groups: 1, MainPrio: 20}, func(ak *aklib.AppKernel, me *hw.Exec) {
			// Attempt to map a frame outside the granted groups (frame 0
			// belongs to reserved group 0).
			err := ak.CK.LoadMapping(me, ak.SpaceID, ck.MappingSpec{
				VA: 0x3000_0000, PFN: 3, Writable: true,
			})
			if err != ck.ErrAccessDenied {
				t.Errorf("unauthorized mapping: %v, want ErrAccessDenied", err)
			}
		})
		if err != nil {
			t.Fatalf("launch: %v", err)
		}
	})
}

func TestChannelAndRPCBetweenKernels(t *testing.T) {
	var pong []byte
	startMachine(t, func(s *SRM, e *hw.Exec) {
		k := s.CK
		// Shared frames for the two channel directions, from the SRM's
		// own grant; both kernels get access to the group they live in.
		cfg := aklib.ChannelConfig{}
		var reqFrames, respFrames []uint32
		for i := 0; i < cfg.TotalFrames(); i++ {
			f, ok := s.Frames.Alloc()
			if !ok {
				t.Fatal("out of SRM frames")
			}
			reqFrames = append(reqFrames, f)
		}
		for i := 0; i < cfg.TotalFrames(); i++ {
			f, ok := s.Frames.Alloc()
			if !ok {
				t.Fatal("out of SRM frames")
			}
			respFrames = append(respFrames, f)
		}
		grant := func(kid ck.ObjID) {
			for _, f := range append(append([]uint32{}, reqFrames...), respFrames...) {
				if err := k.SetKernelMemoryAccess(e, kid, f/hw.PageGroupPages, 1, true, true); err != nil {
					t.Fatalf("grant: %v", err)
				}
			}
		}

		var req, resp *aklib.Channel
		serverReady := false
		served := false
		lsrv, err := s.Launch(e, "server", LaunchOpts{Groups: 1, MainPrio: 25}, func(ak *aklib.AppKernel, me *hw.Exec) {
			for !serverReady {
				me.Charge(1000)
			}
			srv := aklib.NewRPCServer(ak.CK, req, resp)
			srv.Register(7, func(he *hw.Exec, payload []byte) []byte {
				out := append([]byte("pong:"), payload...)
				return out
			})
			if err := srv.ServeOne(me); err != nil {
				t.Errorf("serve: %v", err)
			}
			served = true
		})
		if err != nil {
			t.Fatalf("launch server: %v", err)
		}
		grant(lsrv.KID)

		clientDone := false
		lcli, err := s.Launch(e, "client", LaunchOpts{Groups: 1, MainPrio: 24}, func(ak *aklib.AppKernel, me *hw.Exec) {
			for req == nil || resp == nil {
				me.Charge(1000)
			}
			conn := &aklib.RPCConn{K: ak.CK, Req: req, Resp: resp}
			reply, err := conn.Call(me, 7, []byte("hi"))
			if err != nil {
				t.Errorf("call: %v", err)
			}
			pong = reply
			clientDone = true
		})
		if err != nil {
			t.Fatalf("launch client: %v", err)
		}
		grant(lcli.KID)

		// Wire the channels: client -> server (signals the server main
		// thread), server -> client (signals the client main thread).
		smCli := lcli.AK.Mem
		smSrv := lsrv.AK.Mem
		req, err = aklib.Connect(e, smCli, 0x4000_0000, smSrv, 0x4000_0000, lsrv.Main.TID, reqFrames, cfg)
		if err != nil {
			t.Fatalf("connect req: %v", err)
		}
		resp, err = aklib.Connect(e, smSrv, 0x4100_0000, smCli, 0x4100_0000, lcli.Main.TID, respFrames, cfg)
		if err != nil {
			t.Fatalf("connect resp: %v", err)
		}
		serverReady = true
		for !served || !clientDone {
			e.Charge(4000)
		}
	})
	if string(pong) != "pong:hi" {
		t.Fatalf("rpc reply = %q", pong)
	}
}

func TestSwapAndUnswap(t *testing.T) {
	counted := 0
	resumed := false
	startMachine(t, func(s *SRM, e *hw.Exec) {
		_, err := s.Launch(e, "app", LaunchOpts{Groups: 1, MainPrio: 20}, func(ak *aklib.AppKernel, me *hw.Exec) {
			if _, err := ak.Mem.Map(me, "heap", 0x1000_0000, 4, aklib.SegFlags{Writable: true}, nil); err != nil {
				t.Errorf("map: %v", err)
				return
			}
			me.Store32(0x1000_0000, 1)
			for i := 0; i < 1000; i++ {
				me.Charge(2000)
				counted++
			}
			// After the swap/unswap cycle the heap must still hold data
			// (frames were retained; mappings refault on demand).
			if me.Load32(0x1000_0000) != 1 {
				t.Error("heap lost across swap")
			}
			resumed = true
		})
		if err != nil {
			t.Fatalf("launch: %v", err)
		}
		e.Charge(hw.CyclesFromMicros(4000))
		if err := s.Swap(e, "app"); err != nil {
			t.Fatalf("swap: %v", err)
		}
		frozen := counted
		e.Charge(hw.CyclesFromMicros(20000))
		if counted != frozen {
			t.Errorf("kernel advanced while swapped: %d -> %d", frozen, counted)
		}
		if err := s.Unswap(e, "app"); err != nil {
			t.Fatalf("unswap: %v", err)
		}
	})
	if !resumed {
		t.Fatal("app kernel did not resume after unswap")
	}
}

func TestGroupAllocator(t *testing.T) {
	g := NewGroupAllocator(16 << 20) // 32 groups, group 0 reserved
	if g.Available() != 31 {
		t.Fatalf("available = %d, want 31", g.Available())
	}
	seen := map[uint32]bool{}
	for {
		v, ok := g.Alloc()
		if !ok {
			break
		}
		if v == 0 {
			t.Fatal("allocated reserved group 0")
		}
		if seen[v] {
			t.Fatalf("group %d allocated twice", v)
		}
		seen[v] = true
	}
	if len(seen) != 31 {
		t.Fatalf("allocated %d groups", len(seen))
	}
}

func TestKernelEvictionSwapsAndUnswapRevives(t *testing.T) {
	m := hw.NewMachine(hw.DefaultConfig())
	k, err := ck.New(m.MPMs[0], ck.Config{KernelSlots: 3})
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]*int{"a": new(int), "b": new(int)}
	mkMain := func(name string) func(ak *aklib.AppKernel, e *hw.Exec) {
		return func(ak *aklib.AppKernel, e *hw.Exec) {
			for i := 0; i < 2000; i++ {
				e.Charge(4000)
				*counts[name]++
			}
		}
	}
	_, err = Start(k, m.MPMs[0], func(s *SRM, e *hw.Exec) {
		// NOTE: this body runs in a simulation coroutine; t.Fatalf here
		// would kill the coroutine without yielding and wedge the
		// engine, so failures use Errorf + return.
		la, err := s.Launch(e, "a", LaunchOpts{Groups: 1, MainPrio: 20}, mkMain("a"))
		if err != nil {
			t.Errorf("launch a: %v", err)
			return
		}
		if _, err := s.Launch(e, "b", LaunchOpts{Groups: 1, MainPrio: 20}, mkMain("b")); err != nil {
			t.Errorf("launch b: %v", err)
			return
		}
		e.Charge(hw.CyclesFromMicros(3000))
		// The third launch exceeds the 3-slot kernel cache: the LRU
		// kernel (a) is written back — swapped out by cache pressure,
		// taking its space and running main thread with it.
		if _, err := s.Launch(e, "c", LaunchOpts{Groups: 1, MainPrio: 20},
			func(ak *aklib.AppKernel, me *hw.Exec) { me.Charge(1000) }); err != nil {
			t.Errorf("launch c: %v", err)
			return
		}
		if la.KID != 0 {
			t.Errorf("kernel a not marked swapped after eviction")
			return
		}
		if la.Main.Loaded {
			t.Errorf("a's main thread still loaded after kernel eviction")
			return
		}
		frozen := *counts["a"]
		e.Charge(hw.CyclesFromMicros(20_000))
		if *counts["a"] != frozen {
			t.Errorf("swapped kernel advanced: %d -> %d", frozen, *counts["a"])
			return
		}
		// Revive it; the main thread resumes where it was forced off.
		if err := s.Unswap(e, "a"); err != nil {
			t.Errorf("unswap: %v", err)
			return
		}
		for *counts["a"] <= frozen {
			e.Charge(hw.CyclesFromMicros(2000))
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	m.Eng.MaxSteps = 400_000_000
	if err := m.Run(math.MaxUint64); err != nil {
		t.Fatal(err)
	}
	// b may itself have been evicted while reviving a (3 slots, 4
	// kernels): a must complete; b completes unless it was the victim.
	if *counts["a"] != 2000 {
		t.Fatalf("main a incomplete: %d", *counts["a"])
	}
	if k.Stats.KernelWritebacks == 0 {
		t.Fatal("no kernel writeback recorded")
	}
}
