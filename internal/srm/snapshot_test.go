package srm

import (
	"reflect"
	"testing"

	"vpp/internal/aklib"
	"vpp/internal/hw"
)

// TestLedgerRoundTrip captures an SRM's resource bookkeeping after two
// launches and a service install, perturbs the live allocator, and
// requires RestoreLedger to reproduce the capture exactly — free-list
// order included, since that order decides every future grant.
func TestLedgerRoundTrip(t *testing.T) {
	var s *SRM
	startMachine(t, func(srm *SRM, e *hw.Exec) {
		s = srm
		if _, err := srm.Launch(e, "a", LaunchOpts{Groups: 2, MainPrio: 20},
			func(ak *aklib.AppKernel, me *hw.Exec) {}); err != nil {
			t.Errorf("launch a: %v", err)
		}
		if _, err := srm.Launch(e, "b", LaunchOpts{Groups: 1, MainPrio: 20},
			func(ak *aklib.AppKernel, me *hw.Exec) {}); err != nil {
			t.Errorf("launch b: %v", err)
		}
		if _, err := srm.AddService(e, "svc", 30, func(se *hw.Exec) {}); err != nil {
			t.Errorf("add service: %v", err)
		}
	})

	led := s.Ledger()
	if len(led.Grants) != 2 || len(led.Services) == 0 || len(led.FreeGroups) == 0 {
		t.Fatalf("unexpected ledger shape: %+v", led)
	}

	// Perturb the live bookkeeping the way a divergent continuation
	// would, then rewind.
	for i, j := 0, len(s.groups.free)-1; i < j; i, j = i+1, j-1 {
		s.groups.free[i], s.groups.free[j] = s.groups.free[j], s.groups.free[i]
	}
	s.launched["a"].groups = nil
	if err := s.RestoreLedger(led); err != nil {
		t.Fatalf("RestoreLedger: %v", err)
	}
	if got := s.Ledger(); !reflect.DeepEqual(led, got) {
		t.Fatalf("ledger did not survive the round trip:\n first: %+v\nsecond: %+v", led, got)
	}

	// A ledger naming state this SRM does not have is refused.
	bad := led
	bad.Grants = append(append([]Grant(nil), led.Grants...), Grant{Name: "ghost"})
	if err := s.RestoreLedger(bad); err == nil {
		t.Fatal("ledger with an unknown launched kernel accepted")
	}
	bad = led
	bad.Services = append(append([]string(nil), led.Services...), "ghost")
	if err := s.RestoreLedger(bad); err == nil {
		t.Fatal("ledger with an unknown service accepted")
	}
}
