package srm

import (
	"fmt"

	"vpp/internal/hw"
)

// Live migration between MPMs. The caching model makes this a records
// handoff rather than a state copy: everything the Cache Kernel holds
// for an application kernel is regenerable from the owning SRM's
// backing records (paper §2), and the simulated machine's physical
// memory is machine-wide, so the kernel's resident frames and segment
// contents travel with the records for free. The protocol is
//
//	source: Expel — quiesce, force full descriptor writeback (Swap),
//	        drop the record, retire the old execution context
//	target: Adopt — rebind the library objects to the new instance,
//	        regenerate the main's execution context, reload (Unswap)
//
// with the *Launched record itself carried between the two SRMs by the
// orchestration plane (a cross-shard message when the MPMs live on
// different engine shards). Identifiers change across the move, exactly
// as they do across any reload.
//
// Resource grants deliberately do not return to the source: the page
// groups in l.groups stay allocated in the source SRM's allocator and
// are re-granted on the target Cache Kernel by Unswap's
// SetKernelMemoryAccess replay. Machine-wide frame ownership is what
// makes the migrated kernel's memory contents valid without copying;
// reclaiming the groups at the source would hand the same frames to a
// new kernel while the migrated one still uses them.

// Expel removes a launched kernel from this SRM for migration: it
// waits until no Cache Kernel call is in flight on this instance (the
// quiesce gate, so no caller observes the kernel mid-detach), forces a
// full writeback of every cached descriptor via the Swap path, drops
// the kernel from this SRM's launched set (so this MPM's guardian will
// not resurrect it), and retires the main thread's execution context —
// contexts are bound to the engine shard that created them and cannot
// follow the record. The returned record is the kernel, ready for
// Adopt on another SRM.
func (s *SRM) Expel(e *hw.Exec, name string) (*Launched, error) {
	l := s.launched[name]
	if l == nil {
		return nil, fmt.Errorf("%w: %q", ErrUnknownKernel, name)
	}
	for s.CK.InFlight() > 0 {
		e.Charge(hw.CostInstr * 16)
	}
	if l.KID != 0 {
		if err := s.Swap(e, name); err != nil {
			return nil, err
		}
	}
	delete(s.launched, name)
	if l.Main != nil {
		l.Main.Retire()
	}
	s.rtrace("migrate-expel", e.Now(), fmt.Sprintf("kernel %q written back and expelled", name))
	return l, nil
}

// Adopt installs an expelled kernel on this SRM and reloads it: the
// library objects are rebound to this instance's Cache Kernel and MPM,
// the main thread gets a fresh execution context on this MPM (rerunning
// its body from the start, like a post-crash Revive), and the Unswap
// path reloads kernel object, space and main with new identifiers. The
// record is inserted into the launched set *before* the reload, so a
// crash of this MPM mid-adopt is recoverable: the guardian replays the
// same Unswap from the same record.
func (s *SRM) Adopt(e *hw.Exec, l *Launched) error {
	if _, dup := s.launched[l.Name]; dup {
		return fmt.Errorf("%w: %q", ErrAlreadyLaunched, l.Name)
	}
	if l.KID != 0 {
		return fmt.Errorf("%w: %q", ErrNotSwapped, l.Name)
	}
	l.AK.CK = s.CK
	l.AK.MPM = s.MPM
	if l.Main != nil && !l.Main.Rehome() {
		return fmt.Errorf("%w: %q", ErrNotRehomable, l.Name)
	}
	s.launched[l.Name] = l
	if err := s.Unswap(e, l.Name); err != nil {
		return err
	}
	s.rtrace("migrate-adopt", e.Now(), fmt.Sprintf("kernel %q reloaded (kid %v)", l.Name, l.KID))
	return nil
}
