// Package srm implements the system resource manager: the first
// application kernel, instantiated when the Cache Kernel boots, that
// owns the other application kernels and divides physical resources
// among them (paper Section 3).
//
// The SRM allocates memory in page groups, processor capacity in
// percentages over extended periods, and network capacity by rate —
// large units the application kernels suballocate internally. It is the
// owning kernel for other kernels' address spaces and threads and
// handles their writebacks.
package srm

import (
	"fmt"
	"sort"

	"vpp/internal/aklib"
	"vpp/internal/ck"
	"vpp/internal/hw"
)

// SRM is one MPM's system resource manager instance.
type SRM struct {
	*aklib.AppKernel
	Boot ck.BootInfo

	groups *GroupAllocator

	launched map[string]*Launched
	services map[string]*aklib.Thread
}

// Launched records one application kernel started by the SRM.
type Launched struct {
	Name string
	AK   *aklib.AppKernel
	KID  ck.ObjID
	SID  ck.ObjID
	Main *aklib.Thread

	opts   LaunchOpts
	groups []uint32 // first page-group indices granted
	sm     *aklib.SegmentManager
}

// LaunchOpts configures an application kernel launch.
type LaunchOpts struct {
	// Groups is the number of 512 KB page groups of physical memory to
	// grant.
	Groups int
	// CPUShare is the percentage of each processor allocated (nil means
	// 100 each).
	CPUShare []int
	// MaxPrio caps the priorities the kernel may assign (0 = no cap).
	MaxPrio int
	// MainPrio is the main thread's priority.
	MainPrio int
	// NetShare is the granted network transmit rate in packets per
	// simulated second (0 = unlimited); enforced by the SRM's channel
	// manager.
	NetShare int
	// Locked pins the kernel object and its own address space in the
	// Cache Kernel, making the kernel's mapping and thread locks
	// effective (real-time configurations; paper §4.2's dependency
	// locking rule).
	Locked bool
}

// Start boots the Cache Kernel with the SRM as the first kernel and runs
// main as its initial thread once the machine runs.
func Start(k *ck.Kernel, mpm *hw.MPM, main func(s *SRM, e *hw.Exec)) (*SRM, error) {
	// Each MPM is its own computer (paper §3); the simulator models the
	// modules' memories as slices of one physical address range, so this
	// module's SRM may grant only its own slice — two SRMs handing out
	// the same frame would silently corrupt each other's kernels.
	groups := mpm.Machine.Phys.Size() / hw.PageGroupSize
	per := groups / uint32(len(mpm.Machine.MPMs))
	lo := uint32(mpm.ID) * per
	if lo == 0 {
		lo = 1 // group 0: boot frames, device buffers
	}
	s := &SRM{
		AppKernel: aklib.NewAppKernel("srm", k, mpm),
		groups:    NewGroupAllocatorRange(lo, uint32(mpm.ID)*per+per),
		launched:  make(map[string]*Launched),
		services:  make(map[string]*aklib.Thread),
	}
	attrs := s.Attrs()
	attrs.Name = "srm"
	boot, err := k.Boot(attrs, 50, func(e *hw.Exec) {
		s.AdoptThread("boot", s.Boot.Thread, s.Boot.Space, e, 50)
		main(s, e)
	})
	if err != nil {
		return nil, err
	}
	s.Boot = boot
	s.ID = boot.Kernel
	s.SpaceID = boot.Space
	// Cache pressure may write a launched kernel back (swap it out); the
	// SRM records it so Unswap can revive it later.
	s.OnKernelWB = func(id ck.ObjID) {
		var names []string
		for n := range s.launched {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			if l := s.launched[n]; l.KID == id {
				s.DetachSpace(l.SID)
				l.AK.DetachSpace(l.SID)
				l.KID, l.SID = 0, 0
			}
		}
	}
	// The SRM's own frames come from a private grant.
	for i := 0; i < 8; i++ {
		if g, ok := s.groups.Alloc(); ok {
			s.Frames.AddGroup(g * hw.PageGroupPages)
		}
	}
	aklib.NewSegmentManager(s.AppKernel, s.SpaceID)
	return s, nil
}

// Launch creates, funds and starts a new application kernel: kernel
// object, memory grant, processor share, its own address space, and a
// main thread running main (paper §3: "the SRM initiates the execution
// of a new application kernel by creating a new kernel object, address
// space, and thread, granting an initial resource allocation ... and
// loading these objects into the Cache Kernel").
func (s *SRM) Launch(e *hw.Exec, name string, opts LaunchOpts, main func(ak *aklib.AppKernel, e *hw.Exec)) (*Launched, error) {
	if _, dup := s.launched[name]; dup {
		return nil, fmt.Errorf("%w: %q", ErrAlreadyLaunched, name)
	}
	k := s.CK
	ak := aklib.NewAppKernel(name, k, s.MPM)
	attrs := ak.Attrs()
	attrs.MaxPrio = opts.MaxPrio
	attrs.CPUShare = opts.CPUShare
	attrs.Locked = opts.Locked
	kid, err := k.LoadKernel(e, attrs)
	if err != nil {
		return nil, fmt.Errorf("srm: load kernel: %w", err)
	}
	ak.ID = kid

	l := &Launched{Name: name, AK: ak, KID: kid, opts: opts}
	for i := 0; i < opts.Groups; i++ {
		g, ok := s.groups.Alloc()
		if !ok {
			return nil, ErrNoCapacity
		}
		l.groups = append(l.groups, g)
		if err := k.SetKernelMemoryAccess(e, kid, g, 1, true, true); err != nil {
			return nil, err
		}
		ak.Frames.AddGroup(g * hw.PageGroupPages)
	}
	if opts.CPUShare != nil {
		if err := k.SetKernelCPUShare(e, kid, opts.CPUShare); err != nil {
			return nil, err
		}
	}

	sid, err := k.LoadSpace(e, opts.Locked)
	if err != nil {
		return nil, fmt.Errorf("srm: load space: %w", err)
	}
	if err := k.SetKernelSpace(e, kid, sid); err != nil {
		return nil, err
	}
	ak.SpaceID = sid
	l.SID = sid
	sm := aklib.NewSegmentManager(ak, sid)
	l.sm = sm
	// The kernel's own space is owned by the SRM, so its faults arrive
	// at the SRM's handler: route them to the kernel's segment manager.
	s.AttachSpace(sid, sm)

	prio := opts.MainPrio
	if prio == 0 {
		prio = 20
	}
	l.Main = ak.NewThread("main", sid, prio, func(me *hw.Exec) {
		main(ak, me)
	})
	if err := l.Main.Load(e, false); err != nil {
		return nil, fmt.Errorf("srm: load main thread: %w", err)
	}
	// The SRM owns this thread, so its writebacks arrive here.
	s.TrackThread(l.Main)
	s.launched[name] = l
	return l, nil
}

// Swap unloads an application kernel's cached objects — the SRM "may
// swap the application kernel out, unloading its objects and saving its
// state" (paper §3). The kernel's threads, spaces and mappings are
// written back to their aklib records; physical frames and grants are
// retained.
func (s *SRM) Swap(e *hw.Exec, name string) error {
	l := s.launched[name]
	if l == nil {
		return fmt.Errorf("%w: %q", ErrUnknownKernel, name)
	}
	k := s.CK
	if l.Main != nil && l.Main.Loaded {
		if err := l.Main.Unload(e); err != nil {
			return err
		}
	}
	if err := k.UnloadKernel(e, l.KID); err != nil && err != ck.ErrInvalidID {
		return err
	}
	if err := k.UnloadSpace(e, l.SID); err != nil && err != ck.ErrInvalidID {
		return err
	}
	s.DetachSpace(l.SID)
	l.AK.DetachSpace(l.SID)
	l.KID, l.SID = 0, 0
	return nil
}

// Unswap reloads a swapped kernel: a fresh kernel object, space and
// identifiers (identifiers change across reload, as the caching model
// requires), with mappings refaulted on demand.
func (s *SRM) Unswap(e *hw.Exec, name string) error {
	l := s.launched[name]
	if l == nil {
		return fmt.Errorf("%w: %q", ErrUnknownKernel, name)
	}
	if l.KID != 0 {
		return fmt.Errorf("%w: %q", ErrNotSwapped, name)
	}
	k := s.CK
	ak := l.AK
	attrs := ak.Attrs()
	attrs.MaxPrio = l.opts.MaxPrio
	attrs.CPUShare = l.opts.CPUShare
	kid, err := k.LoadKernel(e, attrs)
	if err != nil {
		return err
	}
	l.KID = kid
	ak.ID = kid
	for _, g := range l.groups {
		if err := k.SetKernelMemoryAccess(e, kid, g, 1, true, true); err != nil {
			return err
		}
	}
	sid, err := k.LoadSpace(e, false)
	if err != nil {
		return err
	}
	if err := k.SetKernelSpace(e, kid, sid); err != nil {
		return err
	}
	l.SID = sid
	ak.SpaceID = sid
	if l.sm != nil {
		l.sm.SID = sid
		ak.AttachSpace(sid, l.sm)
		s.AttachSpace(sid, l.sm)
	}
	if l.Main != nil {
		l.Main.SpaceID = sid
		if err := l.Main.Load(e, false); err != nil {
			return err
		}
		s.TrackThread(l.Main)
	}
	return nil
}

// Kernel reports a launched kernel by name.
func (s *SRM) Kernel(name string) *Launched { return s.launched[name] }

// FreeGroups reports how many physical page groups remain grantable —
// the orchestration plane's capacity signal for placement.
func (s *SRM) FreeGroups() int { return s.groups.Available() }

// AddService installs a named worker thread in the SRM's own address
// space and registers it for crash replay: after a Cache Kernel
// crash-reboot, Recover restarts every service from its body (the old
// execution context is unrecoverable, like any crashed thread's). The
// orchestration plane's per-MPM agents run as services, so the control
// plane survives the crashes it manages. The body must therefore be
// idempotent from the top — the usual setup-once-then-poll shape.
//
// Services load locked. A service parks in WaitSignal between polls,
// making it the cache's least-recently-used thread exactly when the
// module is busiest; if pressure then evicted it, its pending alarm
// would be dropped by the delivery generation check and the service
// would sleep forever. The SRM's kernel and space are locked from boot,
// so the thread lock is effective (paper §4.2's dependency rule), and
// the lock draws on the SRM's own thread lock quota.
func (s *SRM) AddService(e *hw.Exec, name string, prio int, body func(e *hw.Exec)) (*aklib.Thread, error) {
	if _, dup := s.services[name]; dup {
		return nil, fmt.Errorf("%w: %q", ErrServiceExists, name)
	}
	t := s.NewThread("svc/"+name, s.SpaceID, prio, body)
	if err := t.Load(e, true); err != nil {
		return nil, err
	}
	s.services[name] = t
	return t, nil
}

// Service reports an installed service thread by name.
func (s *SRM) Service(name string) *aklib.Thread { return s.services[name] }

// ServiceDead reports whether a service's execution context died
// without being restarted — a kill fault landed on it while it ran. A
// whole-kernel crash is the guardian's business (Recover replays every
// service); this predicate is for the narrower case where only the
// service thread was lost and the rest of the module kept going.
func (s *SRM) ServiceDead(name string) bool {
	t := s.services[name]
	return t != nil && t.Exec != nil && t.Exec.Finished()
}

// ReviveService regenerates a dead service thread from its body — the
// single-thread analogue of Recover's service replay. The caching model
// makes this cheap: the body is the master copy, the descriptor and the
// execution context are both regenerable, so losing them to a kill
// fault costs a reload, not state. The caller must be a thread of the
// first kernel (services live in the SRM's space).
func (s *SRM) ReviveService(e *hw.Exec, name string) error {
	t := s.services[name]
	if t == nil {
		return fmt.Errorf("%w: service %q", ErrUnknownKernel, name)
	}
	t.Retire()
	t.MarkUnloaded()
	if !t.Rehome() {
		return fmt.Errorf("srm: service %q has no body to revive from", name)
	}
	t.SpaceID = s.SpaceID
	return t.Load(e, true)
}

// serviceNames returns the installed service names in deterministic
// order.
func (s *SRM) serviceNames() []string {
	names := make([]string, 0, len(s.services))
	for n := range s.services {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// GroupAllocator divides physical memory into page groups for granting
// to application kernels.
type GroupAllocator struct {
	free []uint32
}

// NewGroupAllocator covers a physical memory of the given byte size,
// reserving group 0 (low memory: boot frames, device buffers).
func NewGroupAllocator(physBytes uint32) *GroupAllocator {
	return NewGroupAllocatorRange(1, physBytes/hw.PageGroupSize)
}

// NewGroupAllocatorRange covers page groups [lo, hi) — the slice of
// machine memory belonging to one module when several MPMs share the
// simulated physical address range.
func NewGroupAllocatorRange(lo, hi uint32) *GroupAllocator {
	g := &GroupAllocator{}
	for i := hi; i > lo; i-- {
		g.free = append(g.free, i-1)
	}
	return g
}

// Alloc takes a free page group.
func (g *GroupAllocator) Alloc() (uint32, bool) {
	if len(g.free) == 0 {
		return 0, false
	}
	v := g.free[len(g.free)-1]
	g.free = g.free[:len(g.free)-1]
	return v, true
}

// Free returns a page group.
func (g *GroupAllocator) Free(v uint32) { g.free = append(g.free, v) }

// Available reports free group count.
func (g *GroupAllocator) Available() int { return len(g.free) }
