// Package snap implements whole-machine snapshot and fork for the
// Cache Kernel simulation — the paper's caching model pushed to its
// logical extreme: if every piece of kernel state is regenerable cache
// state, the entire machine can be checkpointed and forked like any
// cache.
//
// Two tiers, matching what the host can and cannot capture:
//
//   - Structural (Image / Take / Fork): at a quiescent point — engine
//     drained, no call in flight, no thread descriptor loaded — the
//     machine is pure data. Take captures it completely: descriptor
//     caches in exact LRU/free/generation order, dependency records,
//     reverse TLBs, hardware TLB and L2 contents, local-RAM
//     accounting, clocks, and physical memory frozen into a
//     copy-on-write FrameImage. Fork rebuilds a fresh machine from the
//     image in O(state) — no boot — sharing page frames
//     copy-on-write; a forked machine lazily copies a frame only on
//     first write, so forks are cheap and mutually isolated.
//
//   - Replay (Replay / RunFull / RunFork): a mid-trace cut can park
//     coroutines whose stacks the host cannot serialize, so the
//     snapshot of a non-quiescent machine is its deterministic rebuild
//     recipe plus the cut time: fork = rebuild, re-run to the cut,
//     verify the state digest matches the parent's, then diverge. The
//     fork-equivalence golden matrix runs on this tier.
package snap

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"hash/fnv"

	"vpp/internal/ck"
	"vpp/internal/hw"
	"vpp/internal/hw/dev"
	"vpp/internal/srm"
)

// Image is a complete structural snapshot of a quiescent machine. The
// core fields are filled by Take; the optional device, chaos and SRM
// sections are attached by the owner of those objects (they live
// outside hw.Machine) via the respective State/Cursors/Ledger captures.
type Image struct {
	Cfg    hw.Config
	Clocks hw.ClockState
	Frames *hw.FrameImage
	RAM    []hw.RAMState   // per MPM
	TLBs   [][]hw.TLBState // per MPM, per CPU
	Intr   [][]hw.CPUState // per MPM, per CPU
	L2s    []hw.L2State    // per MPM
	CKs    []*ck.State     // per MPM

	// Optional sections.
	NICs   []dev.NICState
	Fibers []dev.FiberState
	Chaos  map[int]uint64 // injector cursors by shard
	SRMs   []srm.Ledger

	// Pool, when non-nil, supplies pre-built Cache Kernel state to Fork
	// instead of rebuilding it per fork. An execution-hosting detail
	// like Shards/ShardMap: it is never encoded, and pooled and
	// unpooled forks are byte-identical.
	Pool *ck.InstancePool
}

// Take captures a structural snapshot of m and its per-MPM Cache
// Kernel instances. The machine must be quiescent and every kernel
// must be free of in-flight calls and loaded thread descriptors;
// otherwise the error (wrapping ck.ErrSnapshotBusy where relevant)
// says what is still executing. Physical memory is frozen
// copy-on-write: after Take the parent itself copies frames before
// writing them, so the image never changes.
func Take(m *hw.Machine, ks []*ck.Kernel) (*Image, error) {
	if err := m.Quiescent(); err != nil {
		return nil, err
	}
	if len(ks) != len(m.MPMs) {
		return nil, fmt.Errorf("snap: %d kernels for %d MPMs", len(ks), len(m.MPMs))
	}
	im := &Image{
		Cfg:    m.Cfg,
		Clocks: m.CaptureClocks(),
	}
	for i, mpm := range m.MPMs {
		st, err := ks[i].CaptureState()
		if err != nil {
			return nil, fmt.Errorf("snap: mpm %d: %w", i, err)
		}
		im.CKs = append(im.CKs, st)
		im.RAM = append(im.RAM, mpm.LocalRAM.State())
		cpus := make([]hw.TLBState, len(mpm.CPUs))
		intr := make([]hw.CPUState, len(mpm.CPUs))
		for j, c := range mpm.CPUs {
			cpus[j] = c.TLB.State()
			intr[j] = c.State()
		}
		im.TLBs = append(im.TLBs, cpus)
		im.Intr = append(im.Intr, intr)
		im.L2s = append(im.L2s, mpm.L2.State())
	}
	im.Frames = m.Phys.Freeze()
	return im, nil
}

// Fork builds a new machine from the image: same topology, optionally
// a different shard count (the capture is shard-count-invariant), page
// frames shared copy-on-write with the image, and one restored Cache
// Kernel per MPM. bind re-supplies each kernel's handler closures by
// (mpm, kernel name); nil means zero handlers. The forked machine is
// quiescent at the parent's virtual time — inject continuation work
// with Kernel.Resume and drive it with Machine.Run.
func (im *Image) Fork(shards int, bind func(mpm int, name string) ck.KernelAttrs) (*hw.Machine, []*ck.Kernel, error) {
	cfg := im.Cfg
	cfg.Shards = shards
	cfg.ShardMap = nil
	m := hw.NewMachine(cfg)
	m.Phys = im.Frames.NewPhysMem()
	// A zero-length run flips a sharded machine into its running state
	// (runtime coroutine-creation semantics) before continuations are
	// injected, mirroring a parent that has actually run its boot.
	if err := m.Run(0); err != nil {
		return nil, nil, err
	}
	if err := m.WarpClocks(im.Clocks); err != nil {
		return nil, nil, err
	}
	var ks []*ck.Kernel
	for i, mpm := range m.MPMs {
		st := im.CKs[i]
		var k *ck.Kernel
		var err error
		if im.Pool != nil {
			k, err = im.Pool.New(mpm, st.Cfg)
		} else {
			k, err = ck.New(mpm, st.Cfg)
		}
		if err != nil {
			return nil, nil, fmt.Errorf("snap: fork mpm %d: %w", i, err)
		}
		kbind := func(name string) ck.KernelAttrs {
			if bind == nil {
				return ck.KernelAttrs{}
			}
			return bind(i, name)
		}
		if err := k.RestoreState(st, kbind); err != nil {
			return nil, nil, fmt.Errorf("snap: fork mpm %d: %w", i, err)
		}
		for j, c := range mpm.CPUs {
			if err := c.TLB.Restore(im.TLBs[i][j]); err != nil {
				return nil, nil, err
			}
			c.RestoreIntr(im.Intr[i][j])
		}
		if err := mpm.L2.Restore(im.L2s[i]); err != nil {
			return nil, nil, err
		}
		// Pin accounting last: descriptor caches and page-table
		// rebuilds above re-allocated the same live bytes, but the
		// parent's peak is history this machine never executed.
		mpm.LocalRAM.RestoreAccounting(im.RAM[i].Used, im.RAM[i].Peak)
		ks = append(ks, k)
	}
	return m, ks, nil
}

// encImage is the gob-encoded portion of an image. Shards and ShardMap
// are execution-hosting details, not machine state: a snapshot taken
// at any shard count encodes identically.
type encImage struct {
	Cfg    hw.Config
	Clocks hw.ClockState
	RAM    []hw.RAMState
	TLBs   [][]hw.TLBState
	Intr   [][]hw.CPUState
	L2s    []hw.L2State
	CKs    []*ck.State
	NICs   []dev.NICState
	Fibers []dev.FiberState
	Chaos  [][2]uint64 // cursors sorted by shard
	SRMs   []srm.Ledger
}

// Encode serializes the image to deterministic bytes: identical
// machine state yields identical bytes regardless of shard count, run,
// or process. The snapshot-determinism oracle compares these directly;
// len(Encode()) is the snapshot-size metric.
func (im *Image) Encode() ([]byte, error) {
	e := encImage{
		Cfg:    im.Cfg,
		Clocks: im.Clocks,
		RAM:    im.RAM,
		TLBs:   im.TLBs,
		Intr:   im.Intr,
		L2s:    im.L2s,
		CKs:    im.CKs,
		NICs:   im.NICs,
		Fibers: im.Fibers,
		SRMs:   im.SRMs,
	}
	e.Cfg.Shards = 0
	e.Cfg.ShardMap = nil
	// Shard indices are small non-negative ints: probe slots in order
	// rather than ranging the map, so the encoding is byte-stable.
	for s := 0; len(e.Chaos) < len(im.Chaos); s++ {
		if v, ok := im.Chaos[s]; ok {
			e.Chaos = append(e.Chaos, [2]uint64{uint64(s), v})
		}
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&e); err != nil {
		return nil, err
	}
	// Frame payloads: every frame with non-zero contents, in frame
	// order. Allocated-but-zero frames are indistinguishable from
	// never-touched ones to every reader and are skipped, so lazy
	// allocation order cannot perturb the bytes.
	var hdr [4]byte
	for pfn := uint32(0); pfn < im.Frames.Frames(); pfn++ {
		f := im.Frames.PageBytes(pfn)
		if f == nil {
			continue
		}
		zero := true
		for _, b := range f {
			if b != 0 {
				zero = false
				break
			}
		}
		if zero {
			continue
		}
		hdr[0], hdr[1], hdr[2], hdr[3] = byte(pfn), byte(pfn>>8), byte(pfn>>16), byte(pfn>>24)
		buf.Write(hdr[:4])
		buf.Write(f[:])
	}
	return buf.Bytes(), nil
}

// Digest hashes Encode's bytes; two images with equal digests carry
// identical machine state.
func (im *Image) Digest() (uint64, error) {
	b, err := im.Encode()
	if err != nil {
		return 0, err
	}
	h := fnv.New64a()
	h.Write(b)
	return h.Sum64(), nil
}
