package snap

import (
	"fmt"

	"vpp/internal/hw"
)

// The replay fork tier: a snapshot of a machine that is NOT quiescent
// — coroutines parked mid-call, events in flight — cannot be captured
// structurally (a goroutine stack is opaque to the host). But every
// workload here is a pure function of its recipe, so the snapshot of a
// running machine is (recipe, cut time, state digest at the cut): a
// fork rebuilds the machine from the recipe, re-runs it to the cut,
// verifies its hardware state digest equals the parent's, and then
// runs the divergent continuation. The fork-equivalence matrix uses
// this to assert that for every golden workload a forked run's trace
// tail is byte-identical to the from-boot run's tail, serial and
// sharded.

// CutFunc is a workload that can pause mid-trace: it drives its
// machine to virtual time cut, calls pause once, and then runs to
// completion. cut == 0 (with a nil pause) is the plain run. The
// returned values follow the golden-workload convention (final clock,
// schedule steps).
type CutFunc func(trace func(name string, at uint64), shards int, cut uint64, pause func(m *hw.Machine)) (finalClock, steps uint64, err error)

// Dispatch is one schedule-trace record.
type Dispatch struct {
	Name string
	At   uint64
}

// Replay is a replay-tier snapshot specification: which workload,
// which shard count, where to cut.
type Replay struct {
	Workload CutFunc
	Shards   int
	Cut      uint64
}

// FullResult is the parent run: the complete trace, the index of the
// first post-cut record, and the machine state digest at the cut.
type FullResult struct {
	Trace      []Dispatch
	CutIndex   int
	Digest     uint64
	FinalClock uint64
	Steps      uint64
}

// RunFull runs the workload from boot to completion, recording the
// full trace and capturing the state digest at the cut — the parent
// half of a replay fork.
func (r Replay) RunFull() (*FullResult, error) {
	res := &FullResult{}
	trace := func(name string, at uint64) {
		res.Trace = append(res.Trace, Dispatch{Name: name, At: at})
	}
	pause := func(m *hw.Machine) {
		res.CutIndex = len(res.Trace)
		res.Digest = m.StateDigest()
	}
	fc, steps, err := r.Workload(trace, r.Shards, r.Cut, pause)
	if err != nil {
		return nil, err
	}
	res.FinalClock = fc
	res.Steps = steps
	return res, nil
}

// RunFork is the forked run: rebuild from the recipe, re-run to the
// cut with the trace sink disconnected, verify the machine reached a
// state byte-equivalent to the parent's (digest match), then record
// only the continuation. The returned tail is what a from-snapshot run
// observes; compare it to FullResult.Trace[CutIndex:].
func (r Replay) RunFork(wantDigest uint64) ([]Dispatch, error) {
	var tail []Dispatch
	recording := false
	var digestErr error
	trace := func(name string, at uint64) {
		if recording {
			tail = append(tail, Dispatch{Name: name, At: at})
		}
	}
	pause := func(m *hw.Machine) {
		if got := m.StateDigest(); got != wantDigest {
			digestErr = fmt.Errorf("snap: fork diverged from parent at cut %d: state digest %#x, want %#x", r.Cut, got, wantDigest)
		}
		recording = true
	}
	if _, _, err := r.Workload(trace, r.Shards, r.Cut, pause); err != nil {
		return nil, err
	}
	if digestErr != nil {
		return nil, digestErr
	}
	return tail, nil
}

// TailEqual reports whether two dispatch sequences are identical, with
// a description of the first difference.
func TailEqual(a, b []Dispatch) error {
	if len(a) != len(b) {
		return fmt.Errorf("snap: tail length %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			return fmt.Errorf("snap: tail diverges at %d: %q@%d vs %q@%d", i, a[i].Name, a[i].At, b[i].Name, b[i].At)
		}
	}
	return nil
}
