// Command ckvet runs the internal/lint analyzer suite: static checks
// that the deterministic packages stay bit-deterministic and that
// simulated work charges the internal/hw cost model (DESIGN.md §7).
//
// Two modes share the same analyzers:
//
// Standalone, over go list patterns (the default is ./...):
//
//	go run ./cmd/ckvet ./...
//
// As a go vet tool, speaking the vet unit-checker protocol (-V=full
// handshake, then one vet.cfg JSON file per package):
//
//	go build -o bin/ckvet ./cmd/ckvet
//	go vet -vettool=bin/ckvet ./...
//
// Both modes type-check from export data the go command has already
// built, so ckvet needs no dependencies beyond the standard library.
// Exit status is nonzero when any unsuppressed diagnostic is reported;
// suppress individual findings with `//ckvet:allow <analyzer> <reason>`
// on or above the flagged line.
package main

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"runtime"
	"sort"
	"strings"

	"vpp/internal/lint"
	"vpp/internal/lint/analysis"
)

func main() {
	args := os.Args[1:]

	// Tool-identification handshake: the go command invokes
	// `ckvet -V=full` once and uses the line as a cache key.
	for _, a := range args {
		if a == "-V=full" || a == "-V" {
			fmt.Println("ckvet version 1")
			return
		}
		// Flag-discovery handshake: the go command asks which flags the
		// tool accepts (as JSON) before building the vet command line.
		if a == "-flags" {
			fmt.Println("[]")
			return
		}
	}

	// Unit-checker mode: the go command passes a single *.cfg file.
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		os.Exit(runUnitchecker(args[0]))
	}

	patterns := args
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	os.Exit(runStandalone(patterns))
}

// ---------------------------------------------------------------------
// go vet -vettool unit-checker protocol.

// vetConfig mirrors the JSON written by cmd/go for each vetted package
// (cmd/go/internal/work.vetConfig).
type vetConfig struct {
	ID           string
	Compiler     string
	Dir          string
	ImportPath   string
	GoFiles      []string
	NonGoFiles   []string
	IgnoredFiles []string

	ImportMap   map[string]string
	PackageFile map[string]string
	Standard    map[string]bool
	PackageVetx map[string]string
	VetxOnly    bool
	VetxOutput  string
	GoVersion   string

	SucceedOnTypecheckFailure bool
}

func runUnitchecker(cfgFile string) int {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ckvet: %v\n", err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "ckvet: parsing %s: %v\n", cfgFile, err)
		return 1
	}

	// ckvet carries no cross-package facts, but the go command expects
	// the facts file to exist for caching.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte{}, 0o666); err != nil {
			fmt.Fprintf(os.Stderr, "ckvet: %v\n", err)
			return 1
		}
	}
	if cfg.VetxOnly {
		return 0
	}

	lookup := func(path string) (io.ReadCloser, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}

	diags, err := checkPackage(cfg.ImportPath, cfg.GoFiles, cfg.Compiler, cfg.GoVersion, lookup)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintf(os.Stderr, "ckvet: %s: %v\n", cfg.ImportPath, err)
		return 1
	}
	if len(diags) > 0 {
		for _, d := range diags {
			fmt.Fprintln(os.Stderr, d)
		}
		return 2
	}
	return 0
}

// ---------------------------------------------------------------------
// Standalone mode: load packages via `go list -deps -export`.

// listPackage is the subset of `go list -json` output ckvet needs.
type listPackage struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	Export     string
	Standard   bool
	DepOnly    bool
	ImportMap  map[string]string
}

func runStandalone(patterns []string) int {
	cmd := exec.Command("go", append([]string{"list", "-deps", "-export", "-json=ImportPath,Dir,GoFiles,Export,Standard,DepOnly,ImportMap", "--"}, patterns...)...)
	cmd.Stderr = os.Stderr
	out, err := cmd.Output()
	if err != nil {
		fmt.Fprintf(os.Stderr, "ckvet: go list: %v\n", err)
		return 1
	}

	exportFile := map[string]string{}
	var targets []*listPackage
	dec := json.NewDecoder(strings.NewReader(string(out)))
	for {
		var p listPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			fmt.Fprintf(os.Stderr, "ckvet: parsing go list output: %v\n", err)
			return 1
		}
		if p.Export != "" {
			exportFile[p.ImportPath] = p.Export
		}
		if !p.Standard && !p.DepOnly {
			pkg := p
			targets = append(targets, &pkg)
		}
	}
	sort.Slice(targets, func(i, j int) bool { return targets[i].ImportPath < targets[j].ImportPath })

	exitCode := 0
	for _, p := range targets {
		lookup := func(path string) (io.ReadCloser, error) {
			if mapped, ok := p.ImportMap[path]; ok {
				path = mapped
			}
			file, ok := exportFile[path]
			if !ok {
				return nil, fmt.Errorf("no export data for %q", path)
			}
			return os.Open(file)
		}
		var files []string
		for _, f := range p.GoFiles {
			files = append(files, joinPath(p.Dir, f))
		}
		diags, err := checkPackage(p.ImportPath, files, "gc", "", lookup)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ckvet: %s: %v\n", p.ImportPath, err)
			exitCode = 1
			continue
		}
		for _, d := range diags {
			fmt.Println(d)
			exitCode = 1
		}
	}
	return exitCode
}

func joinPath(dir, file string) string {
	if strings.HasPrefix(file, "/") {
		return file
	}
	return dir + string(os.PathSeparator) + file
}

// ---------------------------------------------------------------------
// Shared: parse, type-check, analyze one package.

func checkPackage(importPath string, goFiles []string, compiler, goVersion string, lookup importer.Lookup) ([]string, error) {
	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range goFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}

	if compiler == "" {
		compiler = "gc"
	}
	arch := os.Getenv("GOARCH")
	if arch == "" {
		arch = runtime.GOARCH
	}
	conf := types.Config{
		Importer:  importer.ForCompiler(fset, compiler, lookup),
		GoVersion: goVersion,
		Sizes:     types.SizesFor(compiler, arch),
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	pkg, err := conf.Check(importPath, fset, files, info)
	if err != nil {
		return nil, err
	}

	diags, err := analysis.RunAnalyzers(lint.All, fset, files, pkg, info)
	if err != nil {
		return nil, err
	}
	var out []string
	for _, d := range diags {
		out = append(out, fmt.Sprintf("%s: %s (ckvet/%s)", fset.Position(d.Pos), d.Message, d.Analyzer))
	}
	return out, nil
}
