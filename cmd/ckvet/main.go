// Command ckvet runs the internal/lint analyzer suite: static checks
// that the deterministic packages stay bit-deterministic, that
// simulated work charges the internal/hw cost model (DESIGN.md §7), and
// that shard ownership is respected (DESIGN.md §11).
//
// Two modes share the same analyzers:
//
// Standalone, over go list patterns (the default is ./...):
//
//	go run ./cmd/ckvet ./...
//	go run ./cmd/ckvet -json ./...    # SARIF 2.1.0 on stdout
//	go run ./cmd/ckvet -allows ./...  # audit //ckvet:allow directives
//
// As a go vet tool, speaking the vet unit-checker protocol (-V=full
// handshake, then one vet.cfg JSON file per package):
//
//	go build -o bin/ckvet ./cmd/ckvet
//	go vet -vettool=bin/ckvet ./...
//
// Both modes type-check from export data the go command has already
// built, so ckvet needs no dependencies beyond the standard library.
// Exit status is nonzero when any unsuppressed diagnostic is reported;
// suppress individual findings with `//ckvet:allow <analyzer> <reason>`
// on or above the flagged line. The -allows audit exits nonzero when a
// directive is stale: it matched no diagnostic, so it suppresses
// nothing and should be deleted before it hides a future regression.
package main

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"runtime"
	"sort"
	"strings"

	"vpp/internal/lint"
	"vpp/internal/lint/analysis"
)

func main() {
	args := os.Args[1:]

	// Tool-identification handshake: the go command invokes
	// `ckvet -V=full` once and uses the line as a cache key.
	for _, a := range args {
		if a == "-V=full" || a == "-V" {
			fmt.Println("ckvet version 1")
			return
		}
		// Flag-discovery handshake: the go command asks which flags the
		// tool accepts (as JSON) before building the vet command line.
		if a == "-flags" {
			fmt.Println("[]")
			return
		}
	}

	// Unit-checker mode: the go command passes a single *.cfg file.
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		os.Exit(runUnitchecker(args[0]))
	}

	// Standalone flags, parsed by hand so package patterns stay free-form.
	jsonOut, allowsMode := false, false
	var patterns []string
	for _, a := range args {
		switch a {
		case "-json", "--json":
			jsonOut = true
		case "-allows", "--allows":
			allowsMode = true
		default:
			patterns = append(patterns, a)
		}
	}
	if jsonOut && allowsMode {
		fmt.Fprintln(os.Stderr, "ckvet: -json and -allows are mutually exclusive")
		os.Exit(1)
	}
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	os.Exit(runStandalone(patterns, jsonOut, allowsMode))
}

// ---------------------------------------------------------------------
// go vet -vettool unit-checker protocol.

// vetConfig mirrors the JSON written by cmd/go for each vetted package
// (cmd/go/internal/work.vetConfig).
type vetConfig struct {
	ID           string
	Compiler     string
	Dir          string
	ImportPath   string
	GoFiles      []string
	NonGoFiles   []string
	IgnoredFiles []string

	ImportMap   map[string]string
	PackageFile map[string]string
	Standard    map[string]bool
	PackageVetx map[string]string
	VetxOnly    bool
	VetxOutput  string
	GoVersion   string

	SucceedOnTypecheckFailure bool
}

func runUnitchecker(cfgFile string) int {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ckvet: %v\n", err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "ckvet: parsing %s: %v\n", cfgFile, err)
		return 1
	}

	// ckvet carries no cross-package facts, but the go command expects
	// the facts file to exist for caching.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte{}, 0o666); err != nil {
			fmt.Fprintf(os.Stderr, "ckvet: %v\n", err)
			return 1
		}
	}
	if cfg.VetxOnly {
		return 0
	}

	lookup := func(path string) (io.ReadCloser, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}

	findings, _, err := checkPackage(cfg.ImportPath, cfg.GoFiles, cfg.Compiler, cfg.GoVersion, lookup)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintf(os.Stderr, "ckvet: %s: %v\n", cfg.ImportPath, err)
		return 1
	}
	if len(findings) > 0 {
		for _, f := range findings {
			fmt.Fprintln(os.Stderr, f)
		}
		return 2
	}
	return 0
}

// ---------------------------------------------------------------------
// Standalone mode: load packages via `go list -deps -export`.

// listPackage is the subset of `go list -json` output ckvet needs.
type listPackage struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	Export     string
	Standard   bool
	DepOnly    bool
	ImportMap  map[string]string
}

func runStandalone(patterns []string, jsonOut, allowsMode bool) int {
	cmd := exec.Command("go", append([]string{"list", "-deps", "-export", "-json=ImportPath,Dir,GoFiles,Export,Standard,DepOnly,ImportMap", "--"}, patterns...)...)
	cmd.Stderr = os.Stderr
	out, err := cmd.Output()
	if err != nil {
		fmt.Fprintf(os.Stderr, "ckvet: go list: %v\n", err)
		return 1
	}

	exportFile := map[string]string{}
	var targets []*listPackage
	dec := json.NewDecoder(strings.NewReader(string(out)))
	for {
		var p listPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			fmt.Fprintf(os.Stderr, "ckvet: parsing go list output: %v\n", err)
			return 1
		}
		if p.Export != "" {
			exportFile[p.ImportPath] = p.Export
		}
		if !p.Standard && !p.DepOnly {
			pkg := p
			targets = append(targets, &pkg)
		}
	}
	sort.Slice(targets, func(i, j int) bool { return targets[i].ImportPath < targets[j].ImportPath })

	exitCode := 0
	var all []finding
	var allowLedger []analysis.AllowRecord
	for _, p := range targets {
		lookup := func(path string) (io.ReadCloser, error) {
			if mapped, ok := p.ImportMap[path]; ok {
				path = mapped
			}
			file, ok := exportFile[path]
			if !ok {
				return nil, fmt.Errorf("no export data for %q", path)
			}
			return os.Open(file)
		}
		var files []string
		for _, f := range p.GoFiles {
			files = append(files, joinPath(p.Dir, f))
		}
		findings, allows, err := checkPackage(p.ImportPath, files, "gc", "", lookup)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ckvet: %s: %v\n", p.ImportPath, err)
			exitCode = 1
			continue
		}
		all = append(all, findings...)
		allowLedger = append(allowLedger, allows...)
	}

	if allowsMode {
		return reportAllows(allowLedger, all, exitCode)
	}
	if jsonOut {
		if err := writeSARIF(os.Stdout, all); err != nil {
			fmt.Fprintf(os.Stderr, "ckvet: %v\n", err)
			return 1
		}
		if len(all) > 0 {
			return 1
		}
		return exitCode
	}
	for _, f := range all {
		fmt.Println(f)
		exitCode = 1
	}
	return exitCode
}

// reportAllows prints the //ckvet:allow ledger. A stale directive — one
// no diagnostic matched — fails the audit, as do malformed directives
// (already surfaced as ckvet pseudo-analyzer findings).
func reportAllows(ledger []analysis.AllowRecord, findings []finding, exitCode int) int {
	stale := 0
	for _, r := range ledger {
		mark := "used "
		if !r.Used {
			mark = "STALE"
			stale++
		}
		fmt.Printf("%s %s:%d: %s: %s\n", mark, relPath(r.Pos.Filename), r.Pos.Line, r.Analyzer, r.Reason)
	}
	malformed := 0
	for _, f := range findings {
		if f.Analyzer == "ckvet" {
			fmt.Println(f)
			malformed++
		}
	}
	fmt.Printf("%d allows (%d stale, %d malformed)\n", len(ledger), stale, malformed)
	if stale > 0 || malformed > 0 {
		return 1
	}
	return exitCode
}

func joinPath(dir, file string) string {
	if strings.HasPrefix(file, "/") {
		return file
	}
	return dir + string(os.PathSeparator) + file
}

// relPath trims the current working directory so SARIF locations and
// audit output stay repo-relative (artifact-friendly).
func relPath(name string) string {
	wd, err := os.Getwd()
	if err != nil {
		return name
	}
	if rest, ok := strings.CutPrefix(name, wd+string(os.PathSeparator)); ok {
		return rest
	}
	return name
}

// ---------------------------------------------------------------------
// SARIF 2.1.0 output (the static-analysis interchange format GitHub
// code scanning and most SARIF viewers accept). Minimal but valid: one
// run, one result per diagnostic, ruleId = analyzer name.

type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name  string      `json:"name"`
	Rules []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string       `json:"id"`
	ShortDescription sarifMessage `json:"shortDescription"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   sarifMessage    `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysicalLocation `json:"physicalLocation"`
}

type sarifPhysicalLocation struct {
	ArtifactLocation sarifArtifactLocation `json:"artifactLocation"`
	Region           sarifRegion           `json:"region"`
}

type sarifArtifactLocation struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn"`
}

func writeSARIF(w io.Writer, findings []finding) error {
	var rules []sarifRule
	for _, a := range lint.All {
		doc := a.Doc
		if i := strings.IndexByte(doc, '\n'); i >= 0 {
			doc = doc[:i]
		}
		rules = append(rules, sarifRule{ID: a.Name, ShortDescription: sarifMessage{Text: doc}})
	}
	results := []sarifResult{} // encode [] rather than null when clean
	for _, f := range findings {
		results = append(results, sarifResult{
			RuleID:  f.Analyzer,
			Level:   "error",
			Message: sarifMessage{Text: f.Message},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysicalLocation{
					ArtifactLocation: sarifArtifactLocation{URI: relPath(f.Pos.Filename)},
					Region:           sarifRegion{StartLine: f.Pos.Line, StartColumn: f.Pos.Column},
				},
			}},
		})
	}
	log := sarifLog{
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Version: "2.1.0",
		Runs: []sarifRun{{
			Tool:    sarifTool{Driver: sarifDriver{Name: "ckvet", Rules: rules}},
			Results: results,
		}},
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(log)
}

// ---------------------------------------------------------------------
// Shared: parse, type-check, analyze one package.

// finding is one unsuppressed diagnostic with its resolved position.
type finding struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (f finding) String() string {
	return fmt.Sprintf("%s: %s (ckvet/%s)", f.Pos, f.Message, f.Analyzer)
}

func checkPackage(importPath string, goFiles []string, compiler, goVersion string, lookup importer.Lookup) ([]finding, []analysis.AllowRecord, error) {
	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range goFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			return nil, nil, err
		}
		files = append(files, f)
	}

	if compiler == "" {
		compiler = "gc"
	}
	arch := os.Getenv("GOARCH")
	if arch == "" {
		arch = runtime.GOARCH
	}
	conf := types.Config{
		Importer:  importer.ForCompiler(fset, compiler, lookup),
		GoVersion: goVersion,
		Sizes:     types.SizesFor(compiler, arch),
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	pkg, err := conf.Check(importPath, fset, files, info)
	if err != nil {
		return nil, nil, err
	}

	diags, allows, err := analysis.RunAnalyzersAudit(lint.All, fset, files, pkg, info)
	if err != nil {
		return nil, nil, err
	}
	var out []finding
	for _, d := range diags {
		out = append(out, finding{Pos: fset.Position(d.Pos), Analyzer: d.Analyzer, Message: d.Message})
	}
	return out, allows, nil
}
