// Command cktrace narrates the paper's figures by running their
// scenarios on the simulator and printing the Cache Kernel's event
// trace:
//
//	-demo pagefault   Figure 2: the six-step page fault path
//	-demo messaging   Figure 3: memory-based messaging, one sender and
//	                  two receivers
//	-demo paradigm    Figure 4: a multi-MPM machine, one Cache Kernel
//	                  instance per MPM
//	-demo writeback   Figure 6: dependency-ordered writeback when an
//	                  address space is evicted
//	-demo recovery    §3: a scripted Cache Kernel crash, detected and
//	                  repaired by reloading from application kernels
package main

import (
	"flag"
	"fmt"
	"math"
	"os"

	"vpp/internal/aklib"
	"vpp/internal/chaos"
	"vpp/internal/ck"
	"vpp/internal/hw"
	"vpp/internal/srm"
)

func main() {
	demo := flag.String("demo", "pagefault", "pagefault | messaging | paradigm | writeback | recovery")
	flag.Parse()
	switch *demo {
	case "pagefault":
		pagefault()
	case "messaging":
		messaging()
	case "paradigm":
		paradigm()
	case "writeback":
		writeback()
	case "recovery":
		recovery()
	default:
		fmt.Fprintf(os.Stderr, "unknown demo %q\n", *demo)
		os.Exit(2)
	}
}

// boot builds a machine with a traced Cache Kernel and runs main as the
// SRM.
func boot(main func(s *srm.SRM, e *hw.Exec)) {
	m := hw.NewMachine(hw.DefaultConfig())
	k, err := ck.New(m.MPMs[0], ck.Config{})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	k.Trace = func(event string, now uint64, detail string) {
		fmt.Printf("%10.1fµs  %-16s %s\n", float64(now)/hw.CyclesPerMicrosecond, event, detail)
	}
	if _, err := srm.Start(k, m.MPMs[0], main); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	m.Eng.MaxSteps = 100_000_000
	if err := m.Run(math.MaxUint64); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func pagefault() {
	fmt.Println("Figure 2: page fault handling (6 steps)")
	fmt.Println("  1-2: hardware traps to the Cache Kernel access error handler,")
	fmt.Println("       which forwards the thread to its application kernel's handler")
	fmt.Println("  3-4: the handler picks a frame and loads a new mapping")
	fmt.Println("  5-6: the combined call completes the exception and resumes")
	fmt.Println()
	boot(func(s *srm.SRM, e *hw.Exec) {
		// A store to an unmapped heap page in the SRM's own space.
		pfn, _ := s.Frames.Alloc()
		s.OnFault = func(fe *hw.Exec, th, space ck.ObjID, va uint32, write bool, kind hw.Fault) (bool, bool) {
			err := s.CK.LoadMappingAndResume(fe, space, ck.MappingSpec{
				VA: va &^ (hw.PageSize - 1), PFN: pfn, Writable: true, Cachable: true,
			})
			return true, err == nil
		}
		e.Store32(0x1000_0000, 42)
		fmt.Printf("\nstore completed; read back %d\n", e.Load32(0x1000_0000))
	})
}

func messaging() {
	fmt.Println("Figure 3: memory-based messaging (one sender, two receivers)")
	fmt.Println()
	boot(func(s *srm.SRM, e *hw.Exec) {
		k := s.CK
		pfn, _ := s.Frames.Alloc()
		got := 0
		for i := 0; i < 2; i++ {
			i := i
			recvVA := uint32(0x5000_0000 + i*0x100_0000)
			rth := s.NewThread(fmt.Sprintf("recv%d", i), s.SpaceID, 35, func(re *hw.Exec) {
				v, err := k.WaitSignal(re)
				if err != nil {
					return
				}
				fmt.Printf("receiver %d got address-valued signal %#x (its own mapping of the message)\n", i, v)
				k.SignalReturn(re)
				got++
			})
			if err := rth.Load(e, false); err != nil {
				fmt.Fprintln(os.Stderr, err)
				return
			}
			if err := k.LoadMapping(e, s.SpaceID, ck.MappingSpec{
				VA: recvVA, PFN: pfn, Message: true, SignalThread: rth.TID,
			}); err != nil {
				fmt.Fprintln(os.Stderr, err)
				return
			}
		}
		if err := k.LoadMapping(e, s.SpaceID, ck.MappingSpec{
			VA: 0x6000_0000, PFN: pfn, Writable: true, Message: true,
		}); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return
		}
		e.Charge(hw.CyclesFromMicros(500))
		fmt.Println("sender writes the message word:")
		e.Store32(0x6000_0000+0x40, 7)
		for got < 2 {
			e.Charge(2000)
		}
	})
}

func paradigm() {
	fmt.Println("Figure 4: ParaDiGM architecture — one Cache Kernel per MPM")
	fmt.Println()
	cfg := hw.DefaultConfig()
	cfg.MPMs = 3
	m := hw.NewMachine(cfg)
	for i, mpm := range m.MPMs {
		k, err := ck.New(mpm, ck.Config{})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		i := i
		if _, err := srm.Start(k, mpm, func(s *srm.SRM, e *hw.Exec) {
			e.Charge(hw.CyclesFromMicros(100))
			fmt.Printf("MPM %d: Cache Kernel booted, SRM running (kernel %v), %d CPUs, %d KB local RAM free\n",
				i, s.ID, len(mpm.CPUs), (mpm.LocalRAM.Size()-mpm.LocalRAM.Used())/1024)
		}); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	m.Eng.MaxSteps = 10_000_000
	if err := m.Run(math.MaxUint64); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Println("\neach MPM runs its own Cache Kernel instance: a fault in one")
	fmt.Println("MPM's kernel cannot corrupt another's state (fault containment)")
}

func writeback() {
	fmt.Println("Figure 6: dependency-ordered writeback")
	fmt.Println("evicting an address space writes back its threads and mappings first")
	fmt.Println()
	boot(func(s *srm.SRM, e *hw.Exec) {
		k := s.CK
		s.OnMappingWB = func(st ck.MappingState) {
			fmt.Printf("  writeback: mapping va=%#x of %v (referenced=%v modified=%v)\n",
				st.VA, st.Space, st.Referenced, st.Modified)
		}
		s.OnThreadWB = func(id ck.ObjID, st ck.ThreadState) {
			fmt.Printf("  writeback: thread %v (priority %d)\n", id, st.Priority)
		}
		s.OnSpaceWB = func(id ck.ObjID) {
			fmt.Printf("  writeback: space %v (last: all dependents already out)\n", id)
		}
		sid, err := k.LoadSpace(e, false)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return
		}
		th := s.NewThread("victim-thread", sid, 20, func(we *hw.Exec) {
			_, _ = k.WaitSignal(we)
		})
		_ = th.Load(e, false)
		for i := uint32(0); i < 3; i++ {
			pfn, _ := s.Frames.Alloc()
			_ = k.LoadMapping(e, sid, ck.MappingSpec{VA: 0x2000_0000 + i*hw.PageSize, PFN: pfn, Writable: true})
		}
		e.Charge(hw.CyclesFromMicros(500))
		fmt.Printf("explicitly unloading space %v:\n", sid)
		if err := k.UnloadSpace(e, sid); err != nil {
			fmt.Fprintln(os.Stderr, err)
		}
	})
}

func recovery() {
	const (
		crashUS   = 8_000
		horizonUS = 60_000
	)
	fmt.Println("§3: Cache Kernel crash and recovery (state caching makes the kernel regenerable)")
	fmt.Println("  1: a scheduled fault crash-reboots the Cache Kernel at 8 ms — caches")
	fmt.Println("     wiped, on-CPU contexts killed, every pre-crash identifier invalidated")
	fmt.Println("  2: the SRM guardian (a device engine that survives the reset) probes its")
	fmt.Println("     kernel handle every 250 µs and notices it no longer validates")
	fmt.Println("  3: the guardian drains the CPUs and re-boots the SRM as first kernel")
	fmt.Println("  4: each launched kernel is unswapped — its descriptors reload from")
	fmt.Println("     application-kernel memory, the truth the crash never touched")
	fmt.Println("  5: main threads whose contexts died are revived from their bodies")
	fmt.Println("  6: the first non-system dispatch resumes application work; the crash")
	fmt.Println("     cost latency, not state")
	fmt.Println()

	m := hw.NewMachine(hw.DefaultConfig())
	k, err := ck.New(m.MPMs[0], ck.Config{})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	// Trace only around the crash window so the walkthrough stays
	// readable: armed just before the fault, retired once recovery is
	// reported.
	tracing := false
	k.Trace = func(event string, now uint64, detail string) {
		if tracing {
			fmt.Printf("%10.1fµs  %-16s %s\n", float64(now)/hw.CyclesPerMicrosecond, event, detail)
		}
	}
	in := chaos.New(chaos.Plan{Faults: []chaos.Fault{
		{Kind: chaos.CrashKernel, At: hw.CyclesFromMicros(crashUS), MPM: 0},
	}})
	in.Arm(m, k)
	m.Eng.ScheduleAt(hw.CyclesFromMicros(crashUS)-1, func() {
		fmt.Println("--- kernel trace (crash window) ---")
		tracing = true
	})

	us := func(cyc uint64) float64 { return float64(cyc) / hw.CyclesPerMicrosecond }
	step := 0
	_, err = srm.Start(k, m.MPMs[0], func(s *srm.SRM, e *hw.Exec) {
		// The app's main spans the crash; its loop counter lives in
		// application-kernel state, so the revived main resumes where
		// the dead context left off.
		_, err := s.Launch(e, "app", srm.LaunchOpts{Groups: 4, MainPrio: 30},
			func(ak *aklib.AppKernel, ae *hw.Exec) {
				for step < 20 {
					ae.Charge(hw.CyclesFromMicros(1000))
					step++
				}
				fmt.Printf("%10.1fµs  app: 20 ms of work done — %d ms survived the crash\n",
					us(ae.Now()), crashUS/1000)
			})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
		}
		s.Guard(srm.GuardConfig{
			Interval: hw.CyclesFromMicros(250),
			Until:    hw.CyclesFromMicros(horizonUS),
			OnRecovered: func(r *srm.RecoveryReport) {
				tracing = false
				fmt.Println("--- recovery report ---")
				fmt.Printf("detected     %10.1fµs  (+%.1fµs after the crash)\n", us(r.DetectAt), us(r.DetectAt)-crashUS)
				fmt.Printf("rebooted     %10.1fµs\n", us(r.RebootAt))
				fmt.Printf("reloaded     %10.1fµs  (%d kernel(s), %d main(s) revived)\n", us(r.ReloadAt), r.Kernels, r.Revived)
				fmt.Printf("app resumed  %10.1fµs\n", us(r.FirstResume))
				if r.Err != nil {
					fmt.Printf("reload error: %v\n", r.Err)
				}
			},
		})
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	m.Eng.MaxSteps = 100_000_000
	if err := m.Run(math.MaxUint64); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("\nfinal virtual clock %.1f ms; Cache Kernel epoch %d; crashes injected %d\n",
		float64(m.Eng.Now())/hw.CyclesPerMicrosecond/1000, k.Epoch, in.Stats.Crashes)
}
