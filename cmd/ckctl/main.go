// Command ckctl boots the orchestration plane (internal/ckctl) over a
// simulated multi-module machine, runs a pod fleet through a rolling
// upgrade (live cross-MPM migration of every long-running instance),
// and prints the resulting cluster status — a `ps`-style table by
// default, the full structured status with -json. Everything derives
// from the virtual clock, so the same flags always print the same
// bytes:
//
//	ckctl                          3 modules, 24 pods, upgrade at 10 ms
//	ckctl -mpms 4 -pods 40 -json   bigger fleet, status as JSON
//	ckctl -upgrade 0               no upgrade, just run the fleet
//	ckctl -shards 4                sharded engine (identical output)
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"

	"vpp/internal/ck"
	"vpp/internal/ckctl"
	"vpp/internal/hw"
)

func main() {
	var (
		mpms    = flag.Int("mpms", 3, "modules (MPMs) in the machine")
		pods    = flag.Int("pods", 24, "fleet size (a fifth are bounded batch pods)")
		upgrade = flag.Int("upgrade", 10_000, "rolling-upgrade start in virtual µs (0 = none)")
		shards  = flag.Int("shards", 1, "engine shards (output is byte-identical to -shards 1)")
		jsonOut = flag.Bool("json", false, "print the structured status as JSON instead of the table")
	)
	flag.Parse()
	if err := run(*mpms, *pods, *upgrade, *shards, *jsonOut); err != nil {
		fmt.Fprintf(os.Stderr, "ckctl: %v\n", err)
		os.Exit(1)
	}
}

func run(mpms, pods, upgradeUS, shards int, jsonOut bool) error {
	if mpms < 2 {
		return fmt.Errorf("-mpms must be at least 2 (migration needs a target)")
	}
	if pods < 5 {
		return fmt.Errorf("-pods must be at least 5")
	}

	mcfg := hw.DefaultConfig()
	mcfg.MPMs = mpms
	mcfg.CPUsPerMPM = 2
	mcfg.PhysMemBytes = 256 << 20
	mcfg.Shards = shards
	m := hw.NewMachine(mcfg)

	cfg := ckctl.DefaultConfig()
	cfg.Horizon = hw.CyclesFromMicros(float64(upgradeUS + pods*15_000 + 2_000*pods*pods/mpms + 400_000))
	cfg.LaunchTimeout = hw.CyclesFromMicros(float64(5_000 + 500*pods))
	cfg.MigrateTimeout = hw.CyclesFromMicros(float64(100_000 + 2_000*pods))
	cfg.CK = ck.Config{KernelSlots: pods + 8, SpaceSlots: pods + 16}

	batch := pods / 5
	spec := ckctl.Spec{Kernels: []ckctl.KernelSpec{
		{Name: "fleet", Count: pods - batch, MPM: -1,
			Restart: ckctl.RestartOnFailure, BeatUS: 150},
		{Name: "batch", Count: batch, MPM: -1,
			Restart: ckctl.RestartNever, Beats: 200, BeatUS: 150},
	}}
	c, err := ckctl.New(m, cfg, spec)
	if err != nil {
		return err
	}
	if upgradeUS > 0 {
		c.ScheduleRollingUpgrade(hw.CyclesFromMicros(float64(upgradeUS)))
	}

	m.SetMaxSteps(2_000_000_000)
	if err := m.Run(math.MaxUint64); err != nil {
		return err
	}
	for _, v := range c.Verify() {
		fmt.Fprintf(os.Stderr, "ckctl: verify: %s\n", v)
	}

	st := c.Status()
	if jsonOut {
		b, err := json.MarshalIndent(st, "", "  ")
		if err != nil {
			return err
		}
		fmt.Println(string(b))
		return nil
	}
	fmt.Print(st.Table())
	return nil
}
