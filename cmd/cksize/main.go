// Command cksize reproduces the paper's Section 5.1 code-size
// comparison: it counts the lines of Go in each subsystem of this
// reproduction and prints them next to the paper's numbers for the
// Cache Kernel and the systems it compares against.
//
// The comparison is apples-to-oranges in absolute terms (Go vs C++, a
// simulator substrate vs real hardware), but the *structure* is the
// point: the supervisor-mode core is small, the virtual memory portion
// is a fraction of a conventional kernel's, and boot/monitor support is
// a large share of the total, exactly as in the paper.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// loc counts non-blank lines of Go in dir (tests separated).
func loc(root, dir string) (code, tests int, err error) {
	full := filepath.Join(root, dir)
	entries, err := os.ReadDir(full)
	if err != nil {
		return 0, 0, err
	}
	for _, ent := range entries {
		if ent.IsDir() || !strings.HasSuffix(ent.Name(), ".go") {
			continue
		}
		n, err := countLines(filepath.Join(full, ent.Name()))
		if err != nil {
			return 0, 0, err
		}
		if strings.HasSuffix(ent.Name(), "_test.go") {
			tests += n
		} else {
			code += n
		}
	}
	return code, tests, nil
}

func countLines(path string) (int, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	n := 0
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		if strings.TrimSpace(sc.Text()) != "" {
			n++
		}
	}
	return n, sc.Err()
}

func main() {
	root := flag.String("root", ".", "repository root")
	flag.Parse()

	groups := []struct {
		name string
		dirs []string
		note string
	}{
		{"cache kernel core", []string{"internal/ck"}, "paper: 14,958 total C++ incl. boot"},
		{"  of which VM+mapping code", nil, "paper: ~1,500 (vs V 13,087; Ultrix 23,400; SunOS 14,400; Mach 20,000+)"},
		{"hardware model (simulator substrate)", []string{"internal/hw", "internal/hw/dev", "internal/pagetable", "internal/sim"}, "stands in for ParaDiGM hardware"},
		{"PROM monitor / netboot", []string{"internal/netboot"}, "paper: ~40% of kernel code"},
		{"application kernel library", []string{"internal/aklib"}, "paper: C++ class libraries"},
		{"system resource manager", []string{"internal/srm"}, ""},
		{"UNIX emulator", []string{"internal/unixemu"}, ""},
		{"simulation kernel (MP3D)", []string{"internal/simk"}, ""},
		{"database kernel", []string{"internal/dbk"}, ""},
		{"real-time kernel", []string{"internal/rtk"}, ""},
		{"monolithic baseline", []string{"internal/monolith"}, "Mach/Ultrix stand-in"},
		{"memory-mapped Ethernet driver", []string{"internal/ckdev"}, "paper §2.2 device model"},
		{"distributed shared memory", []string{"internal/dsm"}, "paper §3 higher-level software"},
		{"remote debugger", []string{"internal/dbg"}, "paper §2.3/§5.1"},
		{"evaluation harness", []string{"internal/exp"}, ""},
	}

	fmt.Printf("%-42s %8s %8s  %s\n", "subsystem", "code", "tests", "note")
	totalCode, totalTests := 0, 0
	for _, g := range groups {
		if g.dirs == nil {
			// VM sub-measurement: count the mapping-related files of ck.
			vm := 0
			for _, f := range []string{"mapping.go", "pmap.go", "space.go", "rtlb.go"} {
				n, err := countLines(filepath.Join(*root, "internal/ck", f))
				if err == nil {
					vm += n
				}
			}
			n2, err := func() (int, error) { return countLines(filepath.Join(*root, "internal/pagetable/pagetable.go")) }()
			if err == nil {
				vm += n2
			}
			fmt.Printf("%-42s %8d %8s  %s\n", g.name, vm, "", g.note)
			continue
		}
		code, tests := 0, 0
		for _, d := range g.dirs {
			c, t, err := loc(*root, d)
			if err != nil {
				fmt.Fprintf(os.Stderr, "%s: %v\n", d, err)
				continue
			}
			code += c
			tests += t
		}
		totalCode += code
		totalTests += tests
		fmt.Printf("%-42s %8d %8d  %s\n", g.name, code, tests, g.note)
	}
	// Everything else (cmd, examples, root).
	var extra int
	filepath.WalkDir(*root, func(path string, d os.DirEntry, err error) error {
		if err != nil || d.IsDir() || !strings.HasSuffix(path, ".go") {
			return nil
		}
		if strings.Contains(path, "internal"+string(filepath.Separator)) {
			return nil
		}
		n, err := countLines(path)
		if err == nil {
			extra += n
		}
		return nil
	})
	fmt.Printf("%-42s %8d %8d\n", "tools, examples, benches", extra, 0)
	fmt.Printf("%-42s %8d %8d\n", "total", totalCode+extra, totalTests)

	// Paper comparison table.
	fmt.Println("\npaper §5.1 comparators (lines of kernel VM code):")
	rows := map[string]int{
		"Cache Kernel VM": 1500, "V kernel VM": 13087,
		"Ultrix 4.1 VM": 23400, "SunOS 4.1.2 VM": 14400, "Mach VM": 20000,
	}
	var names []string
	for n := range rows {
		names = append(names, n)
	}
	sort.Slice(names, func(i, j int) bool { return rows[names[i]] < rows[names[j]] })
	for _, n := range names {
		fmt.Printf("  %-18s %6d\n", n, rows[n])
	}
}
