// Command ckos boots the whole V++ system image on the simulated
// ParaDiGM machine — the software architecture of the paper's Figures 1
// and 5: the Cache Kernel in supervisor mode, the system resource
// manager as the first kernel, and then, concurrently, a UNIX emulator
// timesharing a few processes, a database kernel answering queries and
// a wind-tunnel simulation kernel — all sharing the hardware under the
// SRM's resource allocation.
package main

import (
	"flag"
	"fmt"
	"math"
	"os"

	"vpp/internal/aklib"
	"vpp/internal/ck"
	"vpp/internal/dbk"
	"vpp/internal/hw"
	"vpp/internal/simk"
	"vpp/internal/srm"
	"vpp/internal/unixemu"
)

func main() {
	verbose := flag.Bool("v", false, "verbose event output")
	flag.Parse()

	m := hw.NewMachine(hw.DefaultConfig())
	k, err := ck.New(m.MPMs[0], ck.Config{})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if *verbose {
		k.Trace = func(event string, now uint64, detail string) {
			fmt.Printf("%12.1fµs  %-16s %s\n", float64(now)/hw.CyclesPerMicrosecond, event, detail)
		}
	}

	var unixDone, dbDone, simDone bool
	var console *[]byte
	var dbReads uint64
	var mp3dRes simk.MP3DResult

	_, err = srm.Start(k, m.MPMs[0], func(s *srm.SRM, e *hw.Exec) {
		// --- UNIX emulator: timesharing three processes ---
		_, err := s.Launch(e, "unix", srm.LaunchOpts{Groups: 16, MainPrio: 31, MaxPrio: 34, CPUShare: []int{60, 60, 60, 60}},
			func(ak *aklib.AppKernel, me *hw.Exec) {
				u := unixemu.New(ak, unixemu.DefaultConfig())
				console = &u.Console
				if err := u.StartScheduler(me); err != nil {
					fmt.Fprintln(os.Stderr, "unix scheduler:", err)
					return
				}
				u.RegisterProgram("hello", func(env *unixemu.ProcEnv) {
					env.WriteString(1, fmt.Sprintf("hello from pid %d\n", env.Getpid()))
				})
				u.RegisterProgram("worker", func(env *unixemu.ProcEnv) {
					env.Sbrk(2 * hw.PageSize)
					for i := uint32(0); i < 64; i++ {
						env.Store32(env.HeapBase()+i*64, i)
					}
					env.Sleep(10)
					env.WriteString(1, fmt.Sprintf("worker pid %d finished\n", env.Getpid()))
				})
				u.RegisterProgram("init", func(env *unixemu.ProcEnv) {
					env.Spawn("hello")
					env.Spawn("worker")
					env.Spawn("worker")
					for i := 0; i < 3; i++ {
						env.Wait()
					}
					env.WriteString(1, "init: all children reaped\n")
				})
				p, err := u.Spawn(me, "init", nil)
				if err != nil {
					fmt.Fprintln(os.Stderr, "spawn init:", err)
					return
				}
				for q := u.Proc(p.PID()); q != nil && !q.Exited(); q = u.Proc(p.PID()) {
					me.Charge(hw.CyclesFromMicros(2000))
				}
				u.StopScheduler()
				unixDone = true
			})
		if err != nil {
			fmt.Fprintln(os.Stderr, "launch unix:", err)
			return
		}

		// --- database kernel: mixed query workload ---
		_, err = s.Launch(e, "db", srm.LaunchOpts{Groups: 8, MainPrio: 26, CPUShare: []int{40, 40, 40, 40}},
			func(ak *aklib.AppKernel, me *hw.Exec) {
				store := dbk.NewTableStore(48, 2000*hw.CyclesPerMicrosecond)
				db, err := dbk.New(me, ak, store, 12, dbk.PolicyQueryAware)
				if err != nil {
					fmt.Fprintln(os.Stderr, "db:", err)
					return
				}
				for round := 0; round < 2; round++ {
					for i := uint32(0); i < 32; i++ {
						db.Lookup(me, i%8*6)
					}
					db.SeqScan(me)
				}
				dbReads = store.Reads
				dbDone = true
			})
		if err != nil {
			fmt.Fprintln(os.Stderr, "launch db:", err)
			return
		}

		// --- simulation kernel: a short MP3D run ---
		_, err = s.Launch(e, "simk", srm.LaunchOpts{Groups: 16, MainPrio: 24},
			func(ak *aklib.AppKernel, me *hw.Exec) {
				cfg := simk.DefaultMP3DConfig()
				cfg.CellsX, cfg.CellsY, cfg.ParticlesPerCell = 16, 8, 8
				cfg.Steps, cfg.Workers = 3, 2
				mp, err := simk.NewMP3D(me, ak, cfg)
				if err != nil {
					fmt.Fprintln(os.Stderr, "mp3d:", err)
					return
				}
				mp3dRes, _ = mp.Run(me)
				simDone = true
			})
		if err != nil {
			fmt.Fprintln(os.Stderr, "launch simk:", err)
			return
		}

		for !unixDone || !dbDone || !simDone {
			e.Charge(hw.CyclesFromMicros(5000))
		}
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	m.Eng.MaxSteps = 2_000_000_000
	if err := m.Run(math.MaxUint64); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	fmt.Println("=== V++ system image: run complete ===")
	fmt.Printf("virtual time: %.1f ms\n", float64(m.Eng.Now())/hw.CyclesPerMicrosecond/1000)
	if console != nil {
		fmt.Printf("--- UNIX console ---\n%s", string(*console))
	}
	fmt.Printf("--- database ---\n%d disk reads under the query-aware pool\n", dbReads)
	fmt.Printf("--- wind tunnel ---\n%v\n", mp3dRes)
	st := k.Stats
	fmt.Printf("--- Cache Kernel ---\n")
	fmt.Printf("loads: %d kernels, %d spaces, %d threads, %d mappings\n",
		st.KernelLoads, st.SpaceLoads, st.ThreadLoads, st.MappingLoads)
	fmt.Printf("faults %d, forwarded traps %d, signals %d (fast %d), context switches %d\n",
		st.Faults, st.TrapsForwarded, st.SignalsGenerated, st.SignalsFast, st.ContextSwitches)
}
