// Command ckbench regenerates the paper's tables and the evaluation
// experiments on the simulated ParaDiGM machine, printing measured values
// next to the published ones. Run with -exp all (default) or a
// comma-separated subset:
//
//	t1    Table 1: object sizes and cache geometry
//	t2    Table 2 + §5.3: basic operation and trap/signal/fault times
//	s52a  §5.2 descriptor memory budget arithmetic
//	s52b  §5.2 mapping-cache thrash sweep
//	s52c  §5.2 MP3D page-locality degradation
//	a1    ablation: reverse-TLB vs two-stage signal delivery
//	a7    ablation: LRU vs application-controlled database paging
//	rec   crash-recovery latency under a scripted Cache Kernel crash
//	      (opt-in: not part of "all", like -hostperf)
//	orch  live cross-MPM kernel migration blackout under a rolling
//	      upgrade (opt-in; with -json writes BENCH_orchestration.json)
//	fork  whole-machine snapshot/fork cost: boot-vs-fork host time, COW
//	      fault cost, snapshot size (opt-in; with -json writes
//	      BENCH_fork.json)
//
// -hostperf instead measures host-side simulator throughput (virtual
// results are unaffected by it); with -json the report is also written
// to BENCH_hostperf.json — and -exp rec / -exp orch write
// BENCH_recovery.json / BENCH_orchestration.json — for comparison
// across commits (see EXPERIMENTS.md).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"vpp/internal/exp"
	"vpp/internal/sim"
	"vpp/internal/simk"
)

func main() {
	expFlag := flag.String("exp", "all", "experiments to run (comma separated)")
	full := flag.Bool("full", false, "use the paper's full 65536-descriptor pool in s52b (slower)")
	hostperf := flag.Bool("hostperf", false, "measure host-side simulator throughput instead of running experiments")
	jsonOut := flag.Bool("json", false, "with -hostperf or -exp rec, also write the BENCH_*.json report")
	flag.Parse()

	if *hostperf {
		if err := runHostperf(*jsonOut); err != nil {
			fmt.Fprintf(os.Stderr, "error: %v\n", err)
			os.Exit(1)
		}
		return
	}

	want := map[string]bool{}
	for _, name := range strings.Split(*expFlag, ",") {
		want[strings.TrimSpace(name)] = true
	}
	all := want["all"]
	failed := false

	section := func(id, title string) bool {
		if !all && !want[id] {
			return false
		}
		fmt.Printf("=== %s: %s ===\n", strings.ToUpper(id), title)
		return true
	}
	check := func(err error) bool {
		if err != nil {
			fmt.Fprintf(os.Stderr, "error: %v\n", err)
			failed = true
			return false
		}
		return true
	}

	if section("t1", "Cache Kernel object sizes (paper Table 1)") {
		fmt.Println(exp.MeasureTable1())
	}
	if section("t2", "basic operation times, µs (paper Table 2 and §5.3)") {
		t2, err := exp.MeasureTable2()
		if check(err) {
			fmt.Println(t2)
			fmt.Println(t2.Counters())
		}
	}
	if section("s52a", "descriptor memory budget (paper §5.2)") {
		fmt.Println(exp.MeasureMemBudget())
	}
	if section("s52b", "mapping-cache replacement interference sweep (paper §5.2)") {
		slots := 4096
		if *full {
			slots = 65536
		}
		res, err := exp.MeasureThrash(slots, nil, 2)
		if check(err) {
			fmt.Println(res)
		}
	}
	if section("s52c", "MP3D page locality (paper §5.2: up to 25% degradation)") {
		res, err := exp.MeasureMP3D(simk.MP3DConfig{})
		if check(err) {
			fmt.Println(res)
		}
	}
	if section("a1", "reverse-TLB vs two-stage signal delivery (paper §4.1)") {
		res, err := exp.MeasureSignalAblation()
		if check(err) {
			fmt.Println(res)
		}
	}
	if section("a7", "database paging policy (paper §1 motivation)") {
		res, err := exp.MeasureDB()
		if check(err) {
			fmt.Println(res)
		}
	}
	// Opt-in like -hostperf: the scripted crash perturbs nothing when
	// not requested, and "all" output stays byte-stable across commits.
	if want["rec"] {
		fmt.Printf("=== REC: crash recovery latency (paper §3: all Cache Kernel state is regenerable) ===\n")
		res, err := exp.RunRecoveryWorkload(nil, 1)
		if check(err) {
			fmt.Println(res)
			if *jsonOut {
				b, err := json.MarshalIndent(res, "", "  ")
				if check(err) {
					if check(os.WriteFile("BENCH_recovery.json", append(b, '\n'), 0o644)) {
						fmt.Println("wrote BENCH_recovery.json")
					}
				}
			}
		}
	}
	if want["orch"] {
		fmt.Printf("=== ORCH: live migration blackout under a rolling upgrade (DESIGN §12) ===\n")
		res, err := exp.RunOrchestrationWorkload(nil, 1)
		if check(err) {
			fmt.Println(res)
			if *jsonOut {
				b, err := json.MarshalIndent(res, "", "  ")
				if check(err) {
					if check(os.WriteFile("BENCH_orchestration.json", append(b, '\n'), 0o644)) {
						fmt.Println("wrote BENCH_orchestration.json")
					}
				}
			}
		}
	}
	if want["fork"] {
		fmt.Printf("=== FORK: whole-machine snapshot/fork cost (DESIGN §13) ===\n")
		res, err := exp.MeasureFork()
		if check(err) {
			fmt.Println(res)
			if res.ForkToBootRatio > 0.10 {
				check(fmt.Errorf("fork costs %.1f%% of a boot; boot-once/fork-many needs <= 10%%", 100*res.ForkToBootRatio))
			}
			if *jsonOut {
				b, err := json.MarshalIndent(res, "", "  ")
				if check(err) {
					if check(os.WriteFile("BENCH_fork.json", append(b, '\n'), 0o644)) {
						fmt.Println("wrote BENCH_fork.json")
					}
				}
			}
		}
	}
	if failed {
		os.Exit(1)
	}
}

// runHostperf measures host throughput and prints the report; with
// writeJSON it also records BENCH_hostperf.json in the current
// directory.
func runHostperf(writeJSON bool) error {
	r, err := exp.MeasureHostperf()
	if err != nil {
		return err
	}

	// Under -tags cksan the measurement does not replace the clean
	// baseline: it is merged into the existing report as the Cksan
	// overhead section, so one BENCH_hostperf.json carries both builds.
	if sim.SanEnabled() {
		base, err := readHostperfBaseline()
		if err != nil {
			return fmt.Errorf("cksan hostperf needs a clean baseline; run a clean `ckbench -hostperf -json` first (%v)", err)
		}
		base.Cksan = &exp.HostperfCksan{
			EngineStepsPerSec:  r.EngineStepsPerSec,
			TranslateNsPerOp:   r.TranslateNsPerOp,
			HostNsPerSimMicro:  r.HostNsPerSimMicro,
			EngineStepOverhead: ratio(base.EngineStepsPerSec, r.EngineStepsPerSec),
			TranslateOverhead:  ratio(r.TranslateNsPerOp, base.TranslateNsPerOp),
			BootOverhead:       ratio(r.HostNsPerSimMicro, base.HostNsPerSimMicro),
		}
		fmt.Print(r)
		fmt.Printf("cksan overhead vs clean:  engine step %.2fx, translate %.2fx, boot %.2fx\n",
			base.Cksan.EngineStepOverhead, base.Cksan.TranslateOverhead, base.Cksan.BootOverhead)
		if writeJSON {
			return writeHostperf(base)
		}
		return nil
	}

	// A clean run refreshes the baseline but keeps any previously
	// recorded sanitizer section until the next cksan run replaces it.
	if old, err := readHostperfBaseline(); err == nil {
		r.Cksan = old.Cksan
	}
	fmt.Print(r)
	if writeJSON {
		return writeHostperf(r)
	}
	return nil
}

func readHostperfBaseline() (exp.HostperfReport, error) {
	var base exp.HostperfReport
	b, err := os.ReadFile("BENCH_hostperf.json")
	if err != nil {
		return base, err
	}
	if err := json.Unmarshal(b, &base); err != nil {
		return base, err
	}
	return base, nil
}

func writeHostperf(r exp.HostperfReport) error {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile("BENCH_hostperf.json", append(b, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Println("wrote BENCH_hostperf.json")
	return nil
}

// ratio guards the overhead divisions against a zero denominator from a
// degenerate measurement.
func ratio(num, den float64) float64 {
	if den == 0 {
		return 0
	}
	return num / den
}
