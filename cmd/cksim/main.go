// Command cksim drives the deterministic simulation-testing harness
// (internal/simtest) from the command line: run one seed, sweep a seed
// range, replay a recorded failure, or shrink a failing scenario to a
// minimal reproduction.
//
// Usage:
//
//	cksim -seed 42                 run one seed, print its fingerprint
//	cksim -seed 42 -shrink         on failure, also emit a minimized replay
//	cksim -seeds 500 -start 1      sweep seeds [1, 501), one line each
//	cksim -replay cksim-fail-42.json   re-run a recorded reproduction
//	cksim -seeds 40 -shards 4 -san     sanitized sweep (requires -tags cksan)
//	cksim -orch -seed 7                run one orchestration-family seed
//	cksim -orch -seeds 40 -shards 4    sweep the orchestration family
//	cksim -fork 30                     fork-family sweep: boot once per class,
//	                                   explore each seed's continuations by forking
//	cksim -forkcheck -seeds 40         replay-fork every op-stream seed and require
//	                                   verdicts identical to the plain run
//
// On failure the full scenario is written to cksim-fail-<seed>.json
// (and cksim-min-<seed>.json when shrinking); either file feeds -replay.
// All output derives from the virtual clock, so every invocation with
// the same arguments prints the same bytes.
package main

import (
	"flag"
	"fmt"
	"os"

	"vpp/internal/sim"
	"vpp/internal/simtest"
)

func main() {
	var (
		seed    = flag.Uint64("seed", 0, "run this single seed")
		seeds   = flag.Int("seeds", 0, "sweep this many seeds from -start")
		start   = flag.Uint64("start", 1, "first seed of a -seeds sweep")
		replay  = flag.String("replay", "", "re-run a recorded failure file")
		shrink  = flag.Bool("shrink", false, "on failure, shrink to a minimal scenario")
		shrinkN = flag.Int("shrinkruns", 60, "re-run budget for -shrink")
		shards  = flag.Int("shards", 1, "engine shards (results are byte-identical to -shards 1)")
		san     = flag.Bool("san", false, "require the cksan runtime ownership sanitizer (build with -tags cksan)")
		orch    = flag.Bool("orch", false, "run the orchestration family (ckctl rolling upgrades) instead of op streams")
		fork    = flag.Int("fork", 0, "sweep this many fork-family seeds from -start (one boot per class, one fork per continuation)")
		fkCheck = flag.Bool("forkcheck", false, "run each op-stream seed through the replay fork tier and require identical verdicts")
	)
	flag.Parse()

	// -san is a guard, not a switch: the sanitizer is compiled in (or
	// not) by the cksan build tag, and a sweep that silently ran without
	// it would claim coverage it did not have.
	if *san && !sim.SanEnabled() {
		fmt.Fprintln(os.Stderr, "cksim: -san requires a binary built with -tags cksan")
		os.Exit(2)
	}

	gen := simtest.Generate
	if *orch {
		gen = simtest.GenerateOrch
	}
	switch {
	case *replay != "":
		os.Exit(runReplay(*replay, *shards))
	case *fork > 0:
		os.Exit(runForkSweep(*start, *fork, *shards))
	case *fkCheck && *seeds > 0:
		os.Exit(runForkCheck(*start, *seeds, *shards))
	case *fkCheck:
		os.Exit(runForkCheck(*seed, 1, *shards))
	case *seeds > 0:
		os.Exit(runSweep(gen, *start, *seeds, *shrink, *shrinkN, *shards))
	case *seed != 0 || flag.Lookup("seed").Value.String() != "0":
		os.Exit(runOne(gen, *seed, *shrink, *shrinkN, *shards))
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func runOne(gen func(uint64) simtest.Scenario, seed uint64, shrink bool, shrinkRuns, shards int) int {
	res := simtest.RunSharded(gen(seed), nil, shards)
	fmt.Print(res.Fingerprint())
	if !res.Failed() {
		return 0
	}
	writeReplay(fmt.Sprintf("cksim-fail-%d.json", seed), res)
	if shrink {
		min, minRes, sst := simtest.ShrinkWithStats(res.Scenario, shrinkRuns)
		fmt.Printf("shrunk to %d op(s), %d fault(s)\n", len(min.Ops), len(min.Faults))
		fmt.Printf("shrink: %d probe(s) run, %d accepted by prefix determinism without a run; %d prefix invariant check(s) skipped, %d prefix cycle(s) saved\n",
			sst.ProbesRun, sst.ProbesSkipped, sst.ChecksSkipped, sst.PrefixCyclesSaved)
		writeReplay(fmt.Sprintf("cksim-min-%d.json", seed), minRes)
	}
	return 1
}

func runSweep(gen func(uint64) simtest.Scenario, start uint64, count int, shrink bool, shrinkRuns, shards int) int {
	failed := 0
	const maxArtifacts = 3
	for i := 0; i < count; i++ {
		s := start + uint64(i)
		res := simtest.RunSharded(gen(s), nil, shards)
		sc := &res.Scenario
		status := "ok"
		if res.Failed() {
			status = fmt.Sprintf("FAIL (%d: %s)", len(res.Failures), res.Failures[0].Oracle)
		}
		if o := res.Orch; o != nil {
			fmt.Printf("seed %-6d %-22s mpms=%d pods=%d chaotic=%t mig=%d migfail=%d rst=%d makespan=%d blackout_max=%d hash=%016x\n",
				s, status, sc.MPMs, sc.Orch.Pods, sc.Orch.Chaotic, o.Migrated, o.MigFailed,
				o.Restarts, o.Makespan, o.BlackoutMax, res.Hash)
		} else {
			fmt.Printf("seed %-6d %-22s mpms=%d mix{u=%t r=%t d=%t n=%t c=%t} ops=%d faults=%d hash=%016x\n",
				s, status, sc.MPMs, sc.Mix.Unix, sc.Mix.RTK, sc.Mix.DSM, sc.Mix.Netboot, sc.Crash,
				len(sc.Ops), len(sc.Faults), res.Hash)
		}
		if res.Failed() {
			failed++
			if failed <= maxArtifacts {
				writeReplay(fmt.Sprintf("cksim-fail-%d.json", s), res)
				if shrink {
					_, minRes, sst := simtest.ShrinkWithStats(res.Scenario, shrinkRuns)
					fmt.Printf("seed %-6d shrink: %d probe(s) run, %d skipped, %d prefix cycle(s) saved\n",
						s, sst.ProbesRun, sst.ProbesSkipped, sst.PrefixCyclesSaved)
					writeReplay(fmt.Sprintf("cksim-min-%d.json", s), minRes)
				}
			}
		}
	}
	fmt.Printf("swept %d seed(s): %d failed\n", count, failed)
	if failed > 0 {
		return 1
	}
	return 0
}

// runForkSweep drives the fork scenario family: classes boot once and
// every seed of a class explores its continuations off the shared
// snapshot, with the fork-vs-fresh, COW-isolation and
// snapshot-determinism oracles armed.
func runForkSweep(start uint64, count, shards int) int {
	failed := 0
	for i := 0; i < count; i++ {
		s := start + uint64(i)
		res := simtest.RunForkScenario(simtest.GenerateFork(s), shards)
		sc := res.Scenario
		status := "ok"
		if res.Failed() {
			status = fmt.Sprintf("FAIL (%d: %s)", len(res.Failures), res.Failures[0].Oracle)
			failed++
		}
		fmt.Printf("seed %-6d %-22s mpms=%d pages=%d conts=%d forks=%d snap=%dB cow=%d hash=%016x\n",
			s, status, sc.MPMs, sc.Pages, sc.Conts, res.Forks, res.SnapshotBytes, res.CowCopied, res.Hash)
		if res.Failed() {
			for _, f := range res.Failures {
				fmt.Printf("  %s: %s\n", f.Oracle, f.Detail)
			}
		}
	}
	fmt.Printf("forked %d seed(s): %d failed\n", count, failed)
	if failed > 0 {
		return 1
	}
	return 0
}

// runForkCheck replays every op-stream seed through the replay fork
// tier (pause at a mid-run cut, verify the state digest reproduces,
// finish) and requires verdicts identical to the unpaused run.
func runForkCheck(start uint64, count, shards int) int {
	failed := 0
	for i := 0; i < count; i++ {
		s := start + uint64(i)
		if err := simtest.ForkCheck(s, shards); err != nil {
			fmt.Printf("seed %-6d FAIL %v\n", s, err)
			failed++
			continue
		}
		fmt.Printf("seed %-6d fork-equivalent\n", s)
	}
	fmt.Printf("fork-checked %d seed(s): %d failed\n", count, failed)
	if failed > 0 {
		return 1
	}
	return 0
}

func runReplay(path string, shards int) int {
	b, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "cksim: %v\n", err)
		return 2
	}
	rep, err := simtest.DecodeReplay(b)
	if err != nil {
		fmt.Fprintf(os.Stderr, "cksim: %v\n", err)
		return 2
	}
	res := simtest.RunSharded(rep.Scenario, nil, shards)
	fmt.Print(res.Fingerprint())
	if res.Failed() {
		fmt.Println("replay: failure reproduced")
		return 1
	}
	fmt.Printf("replay: did NOT reproduce (%d failure(s) recorded in %s)\n", len(rep.Failures), path)
	return 0
}

// writeReplay is the harness's one sanctioned host-state touch: the
// reproduction artifact.
func writeReplay(path string, res *simtest.Result) {
	b, err := simtest.EncodeReplay(res)
	if err != nil {
		fmt.Fprintf(os.Stderr, "cksim: encode replay: %v\n", err)
		return
	}
	if err := os.WriteFile(path, b, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "cksim: %v\n", err)
		return
	}
	fmt.Printf("wrote %s\n", path)
}
