// Benchmarks regenerating the paper's evaluation (one per table row,
// figure and ablation; DESIGN.md §3 is the index). Durations are
// *simulated* microseconds on the 25 MHz ParaDiGM model, reported as the
// custom metric "sim-µs" next to the paper's value in "paper-µs";
// wall-clock ns/op measures only how fast the simulator itself runs.
//
//	go test -bench=. -benchmem
package vpp

import (
	"testing"

	"vpp/internal/ck"
	"vpp/internal/exp"
	"vpp/internal/hw"
	"vpp/internal/monolith"
	"vpp/internal/simk"
)

// benchTable2 runs the full Table 2 measurement per iteration and
// reports one row.
func benchTable2(b *testing.B, pick func(ck.Table2) float64, paper float64) {
	b.Helper()
	var t2 ck.Table2
	var err error
	for i := 0; i < b.N; i++ {
		t2, err = ck.MeasureTable2(ck.Config{})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(pick(t2), "sim-µs")
	b.ReportMetric(paper, "paper-µs")
}

func BenchmarkTable2(b *testing.B) {
	p := ck.PaperTable2()
	rows := []struct {
		name  string
		pick  func(ck.Table2) float64
		paper float64
	}{
		{"MappingLoad", func(t ck.Table2) float64 { return t.MappingLoad }, p.MappingLoad},
		{"MappingLoadOptimized", func(t ck.Table2) float64 { return t.MappingLoadOpt }, p.MappingLoadOpt},
		{"MappingLoadWriteback", func(t ck.Table2) float64 { return t.MappingLoadWB }, p.MappingLoadWB},
		{"MappingLoadOptWriteback", func(t ck.Table2) float64 { return t.MappingLoadOptWB }, p.MappingLoadOptWB},
		{"MappingUnload", func(t ck.Table2) float64 { return t.MappingUnload }, p.MappingUnload},
		{"ThreadLoad", func(t ck.Table2) float64 { return t.ThreadLoad }, p.ThreadLoad},
		{"ThreadLoadWriteback", func(t ck.Table2) float64 { return t.ThreadLoadWB }, p.ThreadLoadWB},
		{"ThreadUnload", func(t ck.Table2) float64 { return t.ThreadUnload }, p.ThreadUnload},
		{"SpaceLoad", func(t ck.Table2) float64 { return t.SpaceLoad }, p.SpaceLoad},
		{"SpaceLoadWriteback", func(t ck.Table2) float64 { return t.SpaceLoadWB }, p.SpaceLoadWB},
		{"SpaceUnload", func(t ck.Table2) float64 { return t.SpaceUnload }, p.SpaceUnload},
		{"KernelLoad", func(t ck.Table2) float64 { return t.KernelLoad }, p.KernelLoad},
		{"KernelLoadWriteback", func(t ck.Table2) float64 { return t.KernelLoadWB }, p.KernelLoadWB},
		{"KernelUnload", func(t ck.Table2) float64 { return t.KernelUnload }, p.KernelUnload},
	}
	for _, r := range rows {
		b.Run(r.name, func(b *testing.B) { benchTable2(b, r.pick, r.paper) })
	}
}

func BenchmarkSection53(b *testing.B) {
	p := ck.PaperTable2()
	rows := []struct {
		name  string
		pick  func(ck.Table2) float64
		paper float64
	}{
		{"TrapGetpid", func(t ck.Table2) float64 { return t.TrapGetpid }, p.TrapGetpid},
		{"SignalDelivery", func(t ck.Table2) float64 { return t.SignalDeliver }, p.SignalDeliver},
		{"SignalReturn", func(t ck.Table2) float64 { return t.SignalReturn }, p.SignalReturn},
		{"PageFaultTotal", func(t ck.Table2) float64 { return t.PageFaultTotal }, p.PageFaultTotal},
		{"FaultTransfer", func(t ck.Table2) float64 { return t.FaultTransfer }, p.FaultTransfer},
	}
	for _, r := range rows {
		b.Run(r.name, func(b *testing.B) { benchTable2(b, r.pick, r.paper) })
	}
}

// BenchmarkMonolithGetpid is the baseline comparison: the paper reports
// Mach 2.5 getpid at about 25 µs, 12 µs below the Cache Kernel's
// forwarded path.
func BenchmarkMonolithGetpid(b *testing.B) {
	var dur float64
	for i := 0; i < b.N; i++ {
		m := hw.NewMachine(hw.DefaultConfig())
		k := monolith.New(m.MPMs[0])
		if _, err := k.Spawn("u", 10, 0x1000_0000, 4, func(e *hw.Exec) {
			e.Trap(monolith.SysGetpid)
			t0 := e.Now()
			e.Trap(monolith.SysGetpid)
			dur = hw.MicrosFromCycles(e.Now() - t0)
		}); err != nil {
			b.Fatal(err)
		}
		if err := m.Run(1 << 62); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(dur, "sim-µs")
	b.ReportMetric(25, "paper-µs")
}

// BenchmarkThrash sweeps the touched working set against the mapping
// descriptor cache (S5.2b), reporting cycles per touch at each point.
func BenchmarkThrash(b *testing.B) {
	const slots = 1024
	for _, ws := range []int{256, 512, 960, 1152, 1536} {
		b.Run(benchName("pages", ws), func(b *testing.B) {
			var res exp.ThrashResult
			var err error
			for i := 0; i < b.N; i++ {
				res, err = exp.MeasureThrash(slots, []int{ws}, 2)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(res.Points[0].CyclesPerTouch, "sim-cycles/touch")
			b.ReportMetric(float64(res.Points[0].Writebacks), "writebacks")
		})
	}
}

// BenchmarkMP3D reproduces the S5.2c page-locality degradation.
func BenchmarkMP3D(b *testing.B) {
	cfg := simk.MP3DConfig{
		CellsX: 64, CellsY: 16, ParticlesPerCell: 16,
		Workers: 4, Steps: 3, Seed: 3, ComputePerParticle: 24,
	}
	var res exp.MP3DComparison
	var err error
	b.Run("LocalityVsScattered", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			res, err = exp.MeasureMP3D(cfg)
			if err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(res.Locality.MoveMicrosPerStep, "sim-µs/step-locality")
		b.ReportMetric(res.Scattered.MoveMicrosPerStep, "sim-µs/step-scattered")
		b.ReportMetric(100*(res.Slowdown()-1), "degradation-%")
		b.ReportMetric(25, "paper-max-%")
	})
}

// BenchmarkSignalDeliveryPath is ablation A1: reverse-TLB vs two-stage
// dependency-record lookup.
func BenchmarkSignalDeliveryPath(b *testing.B) {
	var res exp.SignalAblation
	var err error
	for i := 0; i < b.N; i++ {
		res, err = exp.MeasureSignalAblation()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.RTLBMicros, "sim-µs-rtlb")
	b.ReportMetric(res.TwoStageMicros, "sim-µs-twostage")
}

// BenchmarkDBPolicy is ablation A7: fixed LRU vs application-controlled
// replacement.
func BenchmarkDBPolicy(b *testing.B) {
	var res exp.DBComparison
	var err error
	for i := 0; i < b.N; i++ {
		res, err = exp.MeasureDB()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.LRUMicros/1000, "sim-ms-lru")
	b.ReportMetric(res.QAMicros/1000, "sim-ms-queryaware")
	b.ReportMetric(float64(res.LRUReads), "reads-lru")
	b.ReportMetric(float64(res.QAReads), "reads-queryaware")
}

// BenchmarkRealtimeLatency is ablation A5: locked objects bound
// activation latency under reclamation pressure.
func BenchmarkRealtimeLatency(b *testing.B) {
	var res exp.RTResult
	var err error
	for i := 0; i < b.N; i++ {
		res, err = exp.MeasureRT()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.Quiet.MaxLatencyUS, "sim-µs-max-idle")
	b.ReportMetric(res.Loaded.MaxLatencyUS, "sim-µs-max-pressure")
}

func benchName(prefix string, v int) string {
	return prefix + "-" + itoa(v)
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [12]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}
